// Package mine implements the levelwise (Apriori-style) frequent-itemset
// engine that every strategy in this repository is built on: plain Apriori,
// the Apriori⁺ baseline, CAP, and the paper's optimized CFQ strategies.
//
// The engine supports the hooks that constrained mining needs:
//
//   - a restricted item Domain (where universal succinct constraints have
//     already filtered the items — the MGF's selection step);
//   - a Required item class realizing one existential succinct predicate:
//     only sets containing at least one required item are candidates, and
//     the internal item order places required items first so the prefix
//     join remains complete (the generate-only property of succinctness);
//   - an anti-monotone CandidateFilter consulted before a candidate is
//     counted (frequency-style pushing of anti-monotone constraints,
//     including the Jmax-derived sum bounds of Section 5.2);
//   - step-at-a-time execution (Step) so two lattices can be dovetailed.
//
// The engine works internally in a dense "rank" space ordered
// required-items-first and converts back to original item space at the API
// boundary.
package mine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/txdb"
)

// GenMode selects the candidate generation algorithm.
type GenMode int

const (
	// GenPrefixJoin joins frequent k-sets sharing a (k-1)-prefix — the
	// classic Apriori generation, kept complete under constraints by the
	// required-first item order.
	GenPrefixJoin GenMode = iota
	// GenExtension extends each frequent k-set with every later frequent
	// item. It generates a superset of the prefix-join candidates (pruned
	// back by the subset test) and exists as an ablation baseline.
	GenExtension
)

// Config configures a Levelwise run.
type Config struct {
	// DB is the transaction database. Required.
	DB *txdb.DB
	// MinSupport is the absolute support threshold; values below 1 are
	// treated as 1.
	MinSupport int
	// Domain restricts mining to these items. Nil means all active items.
	Domain itemset.Set
	// Required, when non-nil, is an existential item class: only sets
	// containing at least one Required item are valid, generated and
	// counted (beyond level 1, which is always counted in full since L1 is
	// needed both for joins and for the quasi-succinct reduction constants).
	Required itemset.Set
	// ReportValid, when non-nil, further filters which frequent sets are
	// *reported* as valid. Sets failing it still participate in candidate
	// generation (it encodes additional existential classes, which are not
	// anti-monotone). Called in original item space.
	ReportValid func(itemset.Set) bool
	// CandidateFilter, when non-nil, is consulted before counting a
	// candidate; rejected candidates are discarded and never extended, so
	// the predicate must be anti-monotone. Called in original item space.
	CandidateFilter func(level int, s itemset.Set) bool
	// MaxLevel stops mining after this level; 0 means unlimited.
	MaxLevel int
	// GenMode selects the candidate generation algorithm.
	GenMode GenMode
	// Workers sets the number of goroutines used for support counting.
	// Values below 2 keep counting serial; parallel counting partitions
	// the transactions and sums per-worker counts, so results are
	// identical either way.
	Workers int
	// PresetL1, when non-nil, supplies already-counted level-1 results
	// (original item space). The first Step then performs no counting pass
	// and charges no candidates: this is how the CFQ optimizer applies the
	// quasi-succinct reduction "immediately after the first iteration of
	// counting" without paying for level 1 twice. Entries outside Domain
	// are ignored; entries failing CandidateFilter are dropped.
	PresetL1 []Counted
	// Budget, when non-nil, caps the resources the run may consume; an
	// overrun aborts mining with a *BudgetError. Budgets shared across
	// miners accumulate consumption globally.
	Budget *Budget
	// Stats, when non-nil, accumulates work counters.
	Stats *Stats
	// Label, when non-empty, prefixes the miner's trace span names (the
	// CFQ engine labels its dovetailed lattices "S" and "T").
	Label string
	// RequiredSite, when non-empty, is the obs.PruneSet site charged for
	// frequent singletons excluded from the valid output by the Required
	// class (defaults to "<label>:generate"). CAP sets it to name the
	// existential constraint that contributed the class.
	//
	// Pruning attribution contract: the engine increments
	// Stats.CandidatesPruned for every discarded candidate and charges the
	// sites it owns (frequency, Required exclusion) itself; a rejection by
	// CandidateFilter or ReportValid is the *closure's* site to charge —
	// a charging closure must charge the context's PruneSet exactly once
	// per false return, so per-site sums keep matching the total.
	RequiredSite string
}

// Counted is a frequent itemset together with its support.
type Counted struct {
	Set     itemset.Set
	Support int
}

// Levelwise is a resumable levelwise miner. Create with New, then call Step
// until done (or RunAll). The context passed to New governs the whole run:
// Step checks it (and the configured Budget) at level and batch boundaries
// and unwinds with a wrapped ctx.Err() or *BudgetError. A miner that has
// failed stays failed; re-running requires a fresh miner.
type Levelwise struct {
	cfg        Config
	stats      *Stats
	guard      *Guard
	tracer     *obs.Tracer
	prune      *obs.PruneSet
	freqSite   string    // pruning site for infrequent candidates
	reqSite    string    // pruning site for Required-excluded singletons
	tx         [][]int32 // transactions projected to rank space
	rankToItem []itemset.Item
	nRequired  int // ranks < nRequired are Required items
	level      int
	done       bool
	err        error

	// State of the previous level (rank space, lex order).
	prevSets [][]int32
	prevSup  []int
	prevKeys map[string]int // rank-set key → index in prevSets

	l1Ranks []int32 // frequent item ranks after level 1 (all, incl. non-required)
	l1Sup   []int   // supports parallel to l1Ranks

	lastFrequent []Counted // all frequent sets of the last completed level
}

// New validates cfg and prepares a miner. The database is projected onto the
// domain once (one scan). ctx governs the whole run: New and every
// subsequent Step observe its cancellation at checkpoint boundaries.
func New(ctx context.Context, cfg Config) (*Levelwise, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("mine: Config.DB is nil")
	}
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	stats := cfg.Stats
	if stats == nil {
		stats = &Stats{}
	}
	domain := cfg.Domain
	if domain == nil {
		domain = cfg.DB.ActiveItems()
	}
	required := cfg.Required
	if required != nil {
		required = required.Intersect(domain)
	}

	// Assign ranks: required items first, then the rest, each ascending.
	rankToItem := make([]itemset.Item, 0, domain.Len())
	if required != nil {
		rankToItem = append(rankToItem, required...)
		rankToItem = append(rankToItem, domain.Minus(required)...)
	} else {
		rankToItem = append(rankToItem, domain...)
	}
	nRequired := 0
	if required != nil {
		nRequired = required.Len()
	}
	maxItem := itemset.Item(-1)
	for _, it := range domain {
		if it > maxItem {
			maxItem = it
		}
	}
	itemToRank := make([]int32, maxItem+1)
	for i := range itemToRank {
		itemToRank[i] = -1
	}
	for r, it := range rankToItem {
		itemToRank[it] = int32(r)
	}

	guard := NewGuard(ctx, cfg.Budget, stats)
	tracer := obs.FromContext(ctx)

	// The projection span covers the setup scan; its stats delta isolates
	// the projection cost from the per-level counting spans that follow.
	var sp *obs.Span
	if tracer != nil {
		sp = tracer.Start(spanName(cfg.Label, "project"),
			obs.Int("domain", domain.Len())).WithStats(stats.Counters())
	}

	// Project the database (one accounted scan, checked per batch).
	tx := make([][]int32, 0, cfg.DB.Len())
	err := cfg.DB.ScanErr(func(tid int, t itemset.Set) error {
		if tid%checkBatch == 0 {
			if err := guard.Check("levelwise: database projection"); err != nil {
				return err
			}
		}
		var row []int32
		for _, it := range t {
			if int(it) < len(itemToRank) && itemToRank[it] >= 0 {
				row = append(row, itemToRank[it])
			}
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		tx = append(tx, row)
		return nil
	})
	if err != nil {
		sp.End(stats.Counters())
		return nil, err
	}
	stats.DBScans++
	sp.End(stats.Counters())

	reqSite := cfg.RequiredSite
	if reqSite == "" {
		reqSite = spanName(cfg.Label, "generate")
	}
	return &Levelwise{
		cfg:        cfg,
		stats:      stats,
		guard:      guard,
		tracer:     tracer,
		prune:      obs.PruningFromContext(ctx),
		freqSite:   spanName(cfg.Label, "frequency"),
		reqSite:    reqSite,
		tx:         tx,
		rankToItem: rankToItem,
		nRequired:  nRequired,
	}, nil
}

// spanName prefixes a span name with the miner's label ("S:level-2").
func spanName(label, name string) string {
	if label == "" {
		return name
	}
	return label + ":" + name
}

// Level returns the last completed level (0 before the first Step).
func (l *Levelwise) Level() int { return l.level }

// Done reports whether mining has finished (no candidates remain or
// MaxLevel reached).
func (l *Levelwise) Done() bool { return l.done }

// LastFrequent returns every frequent set of the last completed level
// (original item space), including sets that are not valid — the raw
// material for Jmax summaries, which need the complete level. The slice is
// owned by the engine; callers must not mutate it.
func (l *Levelwise) LastFrequent() []Counted { return l.lastFrequent }

// FrequentItems returns, after the first Step, all frequent items of the
// domain in original item space — the set L1 whose attribute projections
// provide the quasi-succinct reduction constants.
func (l *Levelwise) FrequentItems() itemset.Set {
	items := make([]itemset.Item, len(l.l1Ranks))
	for i, r := range l.l1Ranks {
		items[i] = l.rankToItem[r]
	}
	return itemset.New(items...)
}

// FrequentItemCounts returns, after the first Step, every frequent item of
// the domain as a counted singleton — the PresetL1 input for a re-planned
// engine.
func (l *Levelwise) FrequentItemCounts() []Counted {
	out := make([]Counted, len(l.l1Ranks))
	for i, r := range l.l1Ranks {
		out[i] = Counted{Set: itemset.New(l.rankToItem[r]), Support: l.l1Sup[i]}
	}
	return out
}

// toOrig converts a rank-space set to a sorted original-space itemset.
func (l *Levelwise) toOrig(rs []int32) itemset.Set {
	items := make([]itemset.Item, len(rs))
	for i, r := range rs {
		items[i] = l.rankToItem[r]
	}
	return itemset.New(items...)
}

// rankKey builds a canonical key for a rank-space set.
func rankKey(rs []int32) string {
	b := make([]byte, 4*len(rs))
	for i, v := range rs {
		u := uint32(v)
		b[4*i] = byte(u)
		b[4*i+1] = byte(u >> 8)
		b[4*i+2] = byte(u >> 16)
		b[4*i+3] = byte(u >> 24)
	}
	return string(b)
}

// Step advances one level and returns the valid frequent sets discovered at
// that level (original item space, after ReportValid), plus whether mining
// has finished. Calling Step after completion returns (nil, true, nil).
//
// A non-nil error means the run was cancelled (a wrapped ctx.Err()) or
// exceeded its budget (*BudgetError with partial Stats); the miner is then
// permanently done and every later Step returns the same error.
func (l *Levelwise) Step() ([]Counted, bool, error) {
	if l.err != nil {
		return nil, true, l.err
	}
	if l.done {
		return nil, true, nil
	}
	// One span per mining level, carrying the level's Stats delta (the
	// per-phase counting/checking cost the ccc analysis argues about).
	// With tracing disabled this is a single nil comparison.
	var sp *obs.Span
	if l.tracer != nil {
		sp = l.tracer.Start(spanName(l.cfg.Label, fmt.Sprintf("level-%d", l.level+1))).
			WithStats(l.stats.Counters())
	}
	var out []Counted
	var err error
	if l.level == 0 {
		out, err = l.stepOne()
	} else {
		out, err = l.stepK()
	}
	if sp != nil {
		sp.SetAttrs(obs.Int("frequent", len(l.lastFrequent)), obs.Int("valid", len(out)))
		sp.End(l.stats.Counters())
	}
	if err != nil {
		l.err = err
		l.done = true
		return nil, true, err
	}
	l.finishLevelCheck()
	return out, l.done, nil
}

// Err returns the error that stopped the run, if any.
func (l *Levelwise) Err() error { return l.err }

func (l *Levelwise) finishLevelCheck() {
	if l.cfg.MaxLevel > 0 && l.level >= l.cfg.MaxLevel {
		l.done = true
	}
	if len(l.prevSets) == 0 {
		l.done = true
	}
}

// stepOne establishes level 1: every domain item is counted (optionally
// pre-filtered by the anti-monotone CandidateFilter), unless PresetL1
// supplies the counts.
func (l *Levelwise) stepOne() ([]Counted, error) {
	if err := l.guard.Check("level 1: candidate generation"); err != nil {
		return nil, err
	}
	n := len(l.rankToItem)
	counts := make([]int, n)
	// counted marks ranks that were candidates of *this* run: only they can
	// be frequency-pruned below. Preset ranks were counted by an earlier
	// run, which already charged their frequency pruning.
	counted := make([]bool, n)
	if l.cfg.PresetL1 != nil {
		rankOf := make(map[itemset.Item]int, n)
		for r, it := range l.rankToItem {
			rankOf[it] = r
		}
		for _, c := range l.cfg.PresetL1 {
			if c.Set.Len() != 1 {
				continue
			}
			r, ok := rankOf[c.Set[0]]
			if !ok {
				continue
			}
			if l.cfg.CandidateFilter != nil && !l.cfg.CandidateFilter(1, c.Set) {
				l.stats.CandidatesPruned++ // site charged by the filter closure
				continue
			}
			counts[r] = c.Support
		}
	} else {
		eligible := make([]bool, n)
		for r := 0; r < n; r++ {
			if l.cfg.CandidateFilter != nil &&
				!l.cfg.CandidateFilter(1, itemset.New(l.rankToItem[r])) {
				l.stats.CandidatesPruned++ // site charged by the filter closure
				continue
			}
			eligible[r] = true
			counted[r] = true
			l.stats.CandidatesCounted++
		}
		for start := 0; start < len(l.tx); start += checkBatch {
			if err := l.guard.Check("level 1: counting"); err != nil {
				return nil, err
			}
			end := start + checkBatch
			if end > len(l.tx) {
				end = len(l.tx)
			}
			for _, t := range l.tx[start:end] {
				for _, r := range t {
					if eligible[r] {
						counts[r]++
					}
				}
			}
		}
		l.stats.DBScans++
	}

	var out []Counted
	l.prevSets = nil
	l.prevSup = nil
	l.prevKeys = map[string]int{}
	l.l1Ranks = nil
	l.l1Sup = nil
	l.lastFrequent = nil
	for r := 0; r < n; r++ {
		// MinSupport >= 1, so ineligible ranks (count 0) are excluded here.
		if counts[r] < l.cfg.MinSupport {
			if counted[r] {
				l.stats.CandidatesPruned++
				l.prune.Charge(l.freqSite, 1)
			}
			continue
		}
		l.stats.FrequentSets++
		l.stats.LatticeBytes += setBytes(1)
		l.l1Ranks = append(l.l1Ranks, int32(r))
		l.l1Sup = append(l.l1Sup, counts[r])
		l.lastFrequent = append(l.lastFrequent,
			Counted{Set: itemset.New(l.rankToItem[r]), Support: counts[r]})
		// A singleton is valid iff it is required (when a Required class
		// exists); invalid singletons still feed level-2 generation.
		valid := l.nRequired == 0 || r < l.nRequired
		if valid {
			rs := []int32{int32(r)}
			l.prevKeys[rankKey(rs)] = len(l.prevSets)
			l.prevSets = append(l.prevSets, rs)
			l.prevSup = append(l.prevSup, counts[r])
			orig := itemset.New(l.rankToItem[r])
			if l.cfg.ReportValid == nil || l.cfg.ReportValid(orig) {
				l.stats.ValidSets++
				out = append(out, Counted{Set: orig, Support: counts[r]})
			} else {
				l.stats.CandidatesPruned++ // site charged by ReportValid
			}
		} else {
			l.stats.CandidatesPruned++
			l.prune.Charge(l.reqSite, 1)
		}
	}
	l.level = 1
	return out, nil
}

// stepK generates, prunes and counts level k+1 candidates.
func (l *Levelwise) stepK() ([]Counted, error) {
	k := l.level
	if err := l.guard.Check(fmt.Sprintf("level %d: candidate generation", k+1)); err != nil {
		return nil, err
	}
	var cands [][]int32
	var err error
	if k == 1 {
		cands, err = l.genLevel2()
	} else {
		switch l.cfg.GenMode {
		case GenExtension:
			cands, err = l.genExtension(k)
		default:
			cands, err = l.genPrefixJoin(k)
		}
	}
	if err != nil {
		return nil, err
	}

	// Anti-monotone candidate filter.
	if l.cfg.CandidateFilter != nil {
		kept := cands[:0]
		for i, c := range cands {
			if i%genCheckBatch == 0 {
				if err := l.guard.Check(fmt.Sprintf("level %d: candidate filtering", k+1)); err != nil {
					return nil, err
				}
			}
			if l.cfg.CandidateFilter(k+1, l.toOrig(c)) {
				kept = append(kept, c)
			} else {
				l.stats.CandidatesPruned++ // site charged by the filter closure
			}
		}
		cands = kept
	}

	l.level = k + 1
	if len(cands) == 0 {
		l.prevSets, l.prevSup, l.prevKeys = nil, nil, map[string]int{}
		l.lastFrequent = nil
		return nil, nil
	}

	// Charge the candidates before counting them: the in-counting
	// checkpoints then enforce MaxCandidates at batch granularity instead
	// of discovering a whole level's overrun only after its DB scan.
	l.stats.CandidatesCounted += int64(len(cands))
	counts, err := l.countCandidates(cands, k+1)
	if err != nil {
		return nil, err
	}
	l.stats.DBScans++

	var out []Counted
	newSets := make([][]int32, 0, len(cands))
	newSup := make([]int, 0, len(cands))
	newKeys := make(map[string]int, len(cands))
	l.lastFrequent = nil
	for i, c := range cands {
		if counts[i] < l.cfg.MinSupport {
			l.stats.CandidatesPruned++
			l.prune.Charge(l.freqSite, 1)
			continue
		}
		l.stats.FrequentSets++
		l.stats.LatticeBytes += setBytes(len(c))
		newKeys[rankKey(c)] = len(newSets)
		newSets = append(newSets, c)
		newSup = append(newSup, counts[i])
		orig := l.toOrig(c)
		l.lastFrequent = append(l.lastFrequent, Counted{Set: orig, Support: counts[i]})
		if l.cfg.ReportValid == nil || l.cfg.ReportValid(orig) {
			l.stats.ValidSets++
			out = append(out, Counted{Set: orig, Support: counts[i]})
		} else {
			l.stats.CandidatesPruned++ // site charged by ReportValid
		}
	}
	l.prevSets, l.prevSup, l.prevKeys = newSets, newSup, newKeys
	return out, nil
}

// genCheckBatch is how many candidates a generation or filtering loop
// produces between checkpoints: prefix boundaries are too fine to check
// individually, whole levels too coarse on wide lattices.
const genCheckBatch = 8192

// genLevel2 pairs frequent items; when a Required class exists the first
// element must be required (required items hold the lowest ranks, so this
// enumerates exactly the valid pairs).
func (l *Levelwise) genLevel2() ([][]int32, error) {
	var cands [][]int32
	for i, a := range l.l1Ranks {
		if l.nRequired > 0 && int(a) >= l.nRequired {
			break // no required item can follow: ranks are sorted
		}
		if err := l.guard.Check("level 2: candidate generation"); err != nil {
			return nil, err
		}
		for _, b := range l.l1Ranks[i+1:] {
			cands = append(cands, []int32{a, b})
		}
	}
	return cands, nil
}

// genPrefixJoin joins frequent valid k-sets sharing their first k-1 ranks
// and applies the validity-aware subset prune. Checkpoints fall on prefix
// boundaries, batched by generated candidates.
func (l *Levelwise) genPrefixJoin(k int) ([][]int32, error) {
	var cands [][]int32
	nextCheck := 0
	sets := l.prevSets
	for i := 0; i < len(sets); i++ {
		if len(cands) >= nextCheck {
			if err := l.guard.Check(fmt.Sprintf("level %d: prefix join", k+1)); err != nil {
				return nil, err
			}
			nextCheck = len(cands) + genCheckBatch
		}
		for j := i + 1; j < len(sets); j++ {
			if !samePrefix(sets[i], sets[j], k-1) {
				break // lex order: once the prefix changes it stays changed
			}
			c := make([]int32, k+1)
			copy(c, sets[i])
			c[k] = sets[j][k-1] // lex order ⇒ sets[j] has the larger tail
			if l.subsetPrune(c) {
				cands = append(cands, c)
			}
		}
	}
	return cands, nil
}

// genExtension extends each frequent valid k-set with every later frequent
// item (ablation baseline; same output after pruning and counting).
func (l *Levelwise) genExtension(k int) ([][]int32, error) {
	var cands [][]int32
	nextCheck := 0
	seen := map[string]bool{}
	for _, s := range l.prevSets {
		if len(cands) >= nextCheck {
			if err := l.guard.Check(fmt.Sprintf("level %d: extension generation", k+1)); err != nil {
				return nil, err
			}
			nextCheck = len(cands) + genCheckBatch
		}
		last := s[len(s)-1]
		for _, r := range l.l1Ranks {
			if r <= last {
				continue
			}
			c := make([]int32, k+1)
			copy(c, s)
			c[k] = r
			key := rankKey(c)
			if seen[key] {
				continue
			}
			seen[key] = true
			if l.subsetPrune(c) {
				cands = append(cands, c)
			}
		}
	}
	// The counting trie requires lexicographic candidate order; extension
	// generation does not produce it naturally.
	sort.Slice(cands, func(i, j int) bool { return lexLess(cands[i], cands[j]) })
	return cands, nil
}

func lexLess(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// subsetPrune reports whether every *valid* k-subset of the (k+1)-candidate
// is frequent. Subsets without a required item were never counted and are
// exempt — this is the validity-aware pruning of constrained levelwise
// mining.
func (l *Levelwise) subsetPrune(c []int32) bool {
	k := len(c) - 1
	sub := make([]int32, k)
	for drop := 0; drop <= k; drop++ {
		copy(sub, c[:drop])
		copy(sub[drop:], c[drop+1:])
		if l.nRequired > 0 && int(sub[0]) >= l.nRequired {
			continue // subset lost its only required item: never counted
		}
		if _, ok := l.prevKeys[rankKey(sub)]; !ok {
			return false
		}
	}
	return true
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// trieNode is a node of the candidate hash-trie used for support counting.
// Children labels are sorted so a transaction can be matched by merging.
type trieNode struct {
	items []int32
	child []*trieNode // nil slots at the leaf level
	leaf  []int32     // candidate index at the leaf level, -1 otherwise
}

// countCandidates counts the supports of lexicographically sorted k-level
// candidates in one pass over the projected transactions. Serial counting
// checkpoints between transaction batches; parallel workers poll the
// context between batches (so cancellation stops them promptly) and the
// coordinator re-checks after they join, which keeps checkpoint numbering
// deterministic regardless of Workers.
func (l *Levelwise) countCandidates(cands [][]int32, k int) ([]int, error) {
	root := &trieNode{}
	for idx, c := range cands {
		n := root
		for depth := 0; depth < k; depth++ {
			v := c[depth]
			last := len(n.items) - 1
			if last >= 0 && n.items[last] == v {
				if depth == k-1 {
					// Duplicate candidate; generation prevents this.
					panic("mine: duplicate candidate in trie build")
				}
				n = n.child[last]
				continue
			}
			n.items = append(n.items, v)
			if depth == k-1 {
				n.child = append(n.child, nil)
				n.leaf = append(n.leaf, int32(idx))
			} else {
				nn := &trieNode{}
				n.child = append(n.child, nn)
				n.leaf = append(n.leaf, -1)
				n = nn
			}
		}
	}

	where := fmt.Sprintf("level %d: counting", k)
	workers := l.cfg.Workers
	if workers < 2 || len(l.tx) < 4*workers {
		counts := make([]int, len(cands))
		for start := 0; start < len(l.tx); start += checkBatch {
			if err := l.guard.Check(where); err != nil {
				return nil, err
			}
			end := start + checkBatch
			if end > len(l.tx) {
				end = len(l.tx)
			}
			countTrie(nil, root, k, l.tx[start:end], counts)
		}
		return counts, nil
	}
	// Parallel counting: partition the transactions, count into per-worker
	// slices against the shared read-only trie, then sum. Workers always
	// rejoin through wg.Wait — cancellation makes them return early, never
	// leak.
	if err := l.guard.Check(where); err != nil {
		return nil, err
	}
	ctx := l.guard.Ctx()
	per := make([][]int, workers)
	var wg sync.WaitGroup
	chunk := (len(l.tx) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(l.tx) {
			hi = len(l.tx)
		}
		if lo >= hi {
			continue
		}
		per[w] = make([]int, len(cands))
		wg.Add(1)
		go func(dst []int, txs [][]int32) {
			defer wg.Done()
			countTrie(ctx, root, k, txs, dst)
		}(per[w], l.tx[lo:hi])
	}
	wg.Wait()
	// A cancellation that stopped the workers early surfaces here, before
	// the partial per-worker counts can be used.
	if err := l.guard.Check(where); err != nil {
		return nil, err
	}
	counts := make([]int, len(cands))
	for _, p := range per {
		for i, v := range p {
			counts[i] += v
		}
	}
	return counts, nil
}

// countTrie counts the trie's candidates over the given transactions into
// counts. The trie is read-only during counting. A non-nil ctx is polled
// between transaction batches; on cancellation the partial counts are
// abandoned by the caller.
func countTrie(ctx context.Context, root *trieNode, k int, txs [][]int32, counts []int) {
	var walk func(n *trieNode, depth int, t []int32)
	walk = func(n *trieNode, depth int, t []int32) {
		i, j := 0, 0
		for i < len(n.items) && j < len(t) {
			// Not enough transaction items left to complete any candidate.
			if len(t)-j < k-depth {
				return
			}
			switch {
			case n.items[i] < t[j]:
				i++
			case n.items[i] > t[j]:
				j++
			default:
				if depth == k-1 {
					counts[n.leaf[i]]++
				} else {
					walk(n.child[i], depth+1, t[j+1:])
				}
				i++
				j++
			}
		}
	}
	for i, t := range txs {
		if ctx != nil && i%checkBatch == 0 && ctx.Err() != nil {
			return
		}
		if len(t) >= k {
			walk(root, 0, t)
		}
	}
}

// RunAll steps the miner to completion and returns the valid frequent sets
// per level (index 0 is level 1). On cancellation or budget exhaustion it
// returns the levels completed so far together with the error.
func (l *Levelwise) RunAll() ([][]Counted, error) {
	var levels [][]Counted
	for !l.done {
		sets, _, err := l.Step()
		if err != nil {
			return levels, err
		}
		if l.level > len(levels) {
			levels = append(levels, sets)
		}
	}
	// Trim trailing empty levels.
	for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	return levels, nil
}

// AllFrequent mines all frequent itemsets over the given domain with no
// constraints — the plain Apriori substrate. ctx cancellation and budget
// overruns abort the run at the next checkpoint.
func AllFrequent(ctx context.Context, db *txdb.DB, minSupport int, domain itemset.Set, budget *Budget, stats *Stats) ([][]Counted, error) {
	lw, err := New(ctx, Config{DB: db, MinSupport: minSupport, Domain: domain, Budget: budget, Stats: stats})
	if err != nil {
		return nil, err
	}
	levels, err := lw.RunAll()
	if err != nil {
		return nil, err
	}
	return levels, nil
}
