package mine

import (
	"context"
	"math/bits"
	"sort"

	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/txdb"
)

// This file implements an Eclat-style vertical miner: each item carries a
// TID bitmap and supports are computed by bitmap intersection during a
// depth-first walk of the prefix tree. It mines exactly the frequent sets
// the levelwise engine finds and serves as an independent implementation
// for cross-checking (and as a faster substrate on dense data, where
// intersecting bitmaps beats re-scanning transactions).

// bitset is a fixed-size bitmap over transaction ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// bitsetBytes is the lattice-memory estimate for one tid bitmap.
func bitsetBytes(b bitset) int64 { return int64(len(b) * 8) }

// andInto writes a ∩ b into dst (all same length) and returns the count.
func andInto(dst, a, b bitset) int {
	n := 0
	for i := range dst {
		dst[i] = a[i] & b[i]
		n += bits.OnesCount64(dst[i])
	}
	return n
}

// VerticalFrequent mines all frequent itemsets over the domain using
// TID-bitmap intersection (Eclat). The result is grouped by level like
// AllFrequent, with each level in lexicographic order. Mining checks ctx
// and budget at prefix boundaries (every class expansion of the DFS) and
// during the vertical projection scan; on abort it returns nil levels and
// the wrapped cancellation or *BudgetError.
func VerticalFrequent(ctx context.Context, db *txdb.DB, minSupport int, domain itemset.Set, budget *Budget, stats *Stats) ([][]Counted, error) {
	if stats == nil {
		stats = &Stats{}
	}
	if minSupport < 1 {
		minSupport = 1
	}
	if domain == nil {
		domain = db.ActiveItems()
	}
	guard := NewGuard(ctx, budget, stats)
	tracer := obs.FromContext(ctx)
	prune := obs.PruningFromContext(ctx)
	span := func(name string) func() {
		if tracer == nil {
			return func() {}
		}
		sp := tracer.Start(name).WithStats(stats.Counters())
		return func() { sp.End(stats.Counters()) }
	}

	// Build the vertical representation (one accounted scan).
	endProject := span("eclat:vertical-projection")
	inDomain := map[itemset.Item]bool{}
	for _, it := range domain {
		inDomain[it] = true
	}
	tids := map[itemset.Item]bitset{}
	err := db.ScanErr(func(tid int, t itemset.Set) error {
		if tid%checkBatch == 0 {
			if err := guard.Check("eclat: vertical projection"); err != nil {
				return err
			}
		}
		for _, it := range t {
			if !inDomain[it] {
				continue
			}
			b := tids[it]
			if b == nil {
				b = newBitset(db.Len())
				tids[it] = b
				stats.LatticeBytes += bitsetBytes(b)
			}
			b.set(tid)
		}
		return nil
	})
	stats.DBScans++
	if err != nil {
		endProject()
		return nil, err
	}

	// Frequent items, ascending.
	type entry struct {
		item itemset.Item
		bits bitset
	}
	var l1 []entry
	for _, it := range domain {
		b := tids[it]
		if b == nil {
			continue
		}
		stats.CandidatesCounted++
		if b.count() >= minSupport {
			l1 = append(l1, entry{it, b})
		} else {
			stats.CandidatesPruned++
			prune.Charge("eclat:frequency", 1)
		}
	}
	sort.Slice(l1, func(i, j int) bool { return l1[i].item < l1[j].item })
	if err := guard.Check("eclat: level 1"); err != nil {
		endProject()
		return nil, err
	}
	endProject()

	endDFS := span("eclat:dfs")
	defer endDFS()
	var levels [][]Counted
	emit := func(set itemset.Set, support int) {
		stats.FrequentSets++
		stats.ValidSets++
		for len(levels) < set.Len() {
			levels = append(levels, nil)
		}
		levels[set.Len()-1] = append(levels[set.Len()-1], Counted{Set: set, Support: support})
	}

	// Standard Eclat recursion: every entry of a class carries the tidset
	// of prefix ∪ {entry.item} and is frequent by construction; the class
	// for the extended prefix comes from pairwise intersections. Each
	// prefix expansion is one cancellation checkpoint.
	var eclat func(prefix itemset.Set, class []entry) error
	eclat = func(prefix itemset.Set, class []entry) error {
		for i, e := range class {
			if err := guard.Check("eclat: prefix expansion"); err != nil {
				return err
			}
			set := prefix.Add(e.item)
			emit(set, e.bits.count())
			var next []entry
			for _, f := range class[i+1:] {
				stats.CandidatesCounted++
				dst := newBitset(db.Len())
				if sup := andInto(dst, e.bits, f.bits); sup >= minSupport {
					next = append(next, entry{f.item, dst})
					stats.LatticeBytes += bitsetBytes(dst)
				} else {
					stats.CandidatesPruned++
					prune.Charge("eclat:frequency", 1)
				}
			}
			if len(next) > 0 {
				if err := eclat(set, next); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Level-1 candidates were already charged above; the recursion charges
	// each deeper intersection as one counted candidate.
	if err := eclat(itemset.Set{}, l1); err != nil {
		return nil, err
	}

	// DFS emission order is not lexicographic per level; normalize.
	for _, lv := range levels {
		sort.Slice(lv, func(i, j int) bool {
			a, b := lv[i].Set, lv[j].Set
			for k := 0; k < a.Len() && k < b.Len(); k++ {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return a.Len() < b.Len()
		})
	}
	for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	return levels, nil
}
