package mine

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/txdb"
)

// This file implements the two-phase partition algorithm of Savasere,
// Omiecinski & Navathe (VLDB'95) — reference [16] of the paper: split the
// database into partitions small enough to mine independently, take the
// union of each partition's locally frequent sets as the global candidate
// pool (any globally frequent set is locally frequent somewhere, by
// pigeonhole), then verify the pool's exact supports in one final pass.
// It needs exactly two logical passes over the data regardless of lattice
// depth, trading extra candidates for fewer scans.

// PartitionFrequent mines all frequent itemsets using the two-phase
// partition algorithm. numPartitions is clamped to [1, db.Len()]. The
// budget spans all partitions: every inner levelwise run draws from the
// same pool, and phase 2's verification scan checks cancellation every
// checkBatch transactions.
func PartitionFrequent(ctx context.Context, db *txdb.DB, minSupport int, domain itemset.Set, numPartitions int, budget *Budget, stats *Stats) ([][]Counted, error) {
	if stats == nil {
		stats = &Stats{}
	}
	if minSupport < 1 {
		minSupport = 1
	}
	if db.Len() == 0 {
		return nil, nil
	}
	if numPartitions < 1 {
		numPartitions = 1
	}
	if numPartitions > db.Len() {
		numPartitions = db.Len()
	}

	// Per-partition spans are structural (no delta): the inner levelwise
	// miners share this run's stats object and attribute their own deltas,
	// so an outer delta would double-count. The same holds for pruning: the
	// inner miners charge their own frequency sites; only phase 2's global
	// verification pruning is charged here.
	tracer := obs.FromContext(ctx)
	prune := obs.PruningFromContext(ctx)

	// Phase 1: mine each partition at the proportional local threshold.
	candidates := map[string]itemset.Set{}
	per := db.Len() / numPartitions
	rem := db.Len() % numPartitions
	start := 0
	for p := 0; p < numPartitions; p++ {
		size := per
		if p < rem {
			size++
		}
		if size == 0 {
			continue
		}
		part := make([]itemset.Set, 0, size)
		for i := start; i < start+size; i++ {
			part = append(part, db.Transaction(i))
		}
		start += size
		// Local threshold: ceil(minSupport * size / N). A set with global
		// support >= minSupport must reach this in at least one partition.
		local := (minSupport*size + db.Len() - 1) / db.Len()
		if local < 1 {
			local = 1
		}
		var psp *obs.Span
		if tracer != nil {
			psp = tracer.Start(fmt.Sprintf("partition-%d", p),
				obs.Int("transactions", size), obs.Int("local_min_support", local))
		}
		lw, err := New(ctx, Config{
			DB:         txdb.New(part),
			MinSupport: local,
			Domain:     domain,
			Budget:     budget,
			Stats:      stats,
		})
		if err != nil {
			psp.End(nil)
			return nil, fmt.Errorf("mine: partition %d: %w", p, err)
		}
		levels, err := lw.RunAll()
		psp.End(nil)
		if err != nil {
			return nil, err
		}
		for _, lv := range levels {
			for _, c := range lv {
				candidates[c.Set.Key()] = c.Set
			}
		}
	}

	// Phase 2: one global pass verifies the pool's exact supports. The
	// guard is created here (not earlier) so it charges only the phase-2
	// increments — phase 1's inner miners published their own. The verify
	// span carries phase 2's delta for the same reason.
	guard := NewGuard(ctx, budget, stats)
	endVerify := func() {}
	if tracer != nil {
		sp := tracer.Start("partition-verify", obs.Int("pool", len(candidates))).
			WithStats(stats.Counters())
		endVerify = func() { sp.End(stats.Counters()) }
	}
	defer endVerify()
	keys := make([]string, 0, len(candidates))
	for k := range candidates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sets := make([]itemset.Set, len(keys))
	counts := make([]int, len(keys))
	for i, k := range keys {
		sets[i] = candidates[k]
	}
	stats.CandidatesCounted += int64(len(sets))
	if err := guard.Check("partition: verification pass"); err != nil {
		return nil, err
	}
	err := db.ScanErr(func(tid int, t itemset.Set) error {
		if tid > 0 && tid%checkBatch == 0 {
			if err := guard.Check("partition: verification pass"); err != nil {
				return err
			}
		}
		for i, s := range sets {
			if t.ContainsAll(s) {
				counts[i]++
			}
		}
		return nil
	})
	stats.DBScans++
	if err != nil {
		return nil, err
	}

	var levels [][]Counted
	for i, s := range sets {
		if counts[i] < minSupport {
			stats.CandidatesPruned++
			prune.Charge("partition:frequency", 1)
			continue
		}
		stats.FrequentSets++
		stats.ValidSets++
		for len(levels) < s.Len() {
			levels = append(levels, nil)
		}
		levels[s.Len()-1] = append(levels[s.Len()-1], Counted{Set: s, Support: counts[i]})
	}
	if err := guard.Check("partition: emission"); err != nil {
		return nil, err
	}
	for _, lv := range levels {
		sort.Slice(lv, func(i, j int) bool {
			a, b := lv[i].Set, lv[j].Set
			for k := 0; k < a.Len(); k++ {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
	}
	for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	return levels, nil
}
