package mine

import (
	"context"
	"sort"

	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/txdb"
)

// This file implements FP-growth (Han, Pei & Yin, SIGMOD 2000 — the
// pattern-growth successor to the Apriori family this paper builds on): a
// frequency-descending prefix tree (FP-tree) compresses the database, and
// frequent sets grow by recursively projecting conditional trees, with no
// candidate generation at all. It serves as a third independent mining
// paradigm (horizontal levelwise, vertical intersection, pattern growth)
// for cross-checking, and as the fastest substrate on dense data.

// fpNode is one FP-tree node.
type fpNode struct {
	item     int32 // index into the frequency-descending item order
	count    int
	parent   *fpNode
	children map[int32]*fpNode
	next     *fpNode // header chain of nodes carrying the same item
}

// fpNodeBytes is the lattice-memory estimate for one FP-tree node: the
// struct itself plus its (initially empty) children map header.
const fpNodeBytes = 96

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	headers []*fpNode // per ordered-item chain heads
	counts  []int     // per ordered-item total support in this tree
	nodes   int64     // nodes allocated, for lattice-memory accounting
}

func newFPTree(numItems int) *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: map[int32]*fpNode{}},
		headers: make([]*fpNode, numItems),
		counts:  make([]int, numItems),
	}
}

// insert adds one (ordered) path with the given count.
func (t *fpTree) insert(path []int32, count int) {
	n := t.root
	for _, it := range path {
		child := n.children[it]
		if child == nil {
			child = &fpNode{item: it, parent: n, children: map[int32]*fpNode{}}
			child.next = t.headers[it]
			t.headers[it] = child
			n.children[it] = child
			t.nodes++
		}
		child.count += count
		t.counts[it] += count
		n = child
	}
}

// FPGrowth mines all frequent itemsets with the FP-growth algorithm. The
// result is grouped by level like AllFrequent, each level in lexicographic
// order. Mining checks ctx and budget during both database passes (every
// checkBatch transactions) and at each conditional-tree projection; on
// abort it returns nil levels and the wrapped cancellation or
// *BudgetError.
func FPGrowth(ctx context.Context, db *txdb.DB, minSupport int, domain itemset.Set, budget *Budget, stats *Stats) ([][]Counted, error) {
	if stats == nil {
		stats = &Stats{}
	}
	if minSupport < 1 {
		minSupport = 1
	}
	if domain == nil {
		domain = db.ActiveItems()
	}
	guard := NewGuard(ctx, budget, stats)
	tracer := obs.FromContext(ctx)
	prune := obs.PruningFromContext(ctx)
	// span opens one labelled phase span when tracing is on; each carries
	// the phase's Stats delta (closed via the returned func even on abort).
	span := func(name string) func() {
		if tracer == nil {
			return func() {}
		}
		sp := tracer.Start(name).WithStats(stats.Counters())
		return func() { sp.End(stats.Counters()) }
	}

	// Pass 1: item frequencies over the domain.
	endPass1 := span("fpgrowth:frequency-pass")
	inDomain := map[itemset.Item]bool{}
	for _, it := range domain {
		inDomain[it] = true
	}
	freq := map[itemset.Item]int{}
	err := db.ScanErr(func(tid int, t itemset.Set) error {
		if tid%checkBatch == 0 {
			if err := guard.Check("fp-growth: frequency pass"); err != nil {
				return err
			}
		}
		for _, it := range t {
			if inDomain[it] {
				freq[it]++
			}
		}
		return nil
	})
	stats.DBScans++
	if err != nil {
		endPass1()
		return nil, err
	}

	// Frequency-descending order over frequent items (ties by item id for
	// determinism).
	type fi struct {
		item  itemset.Item
		count int
	}
	var fl []fi
	for it, c := range freq {
		stats.CandidatesCounted++
		if c >= minSupport {
			fl = append(fl, fi{it, c})
		} else {
			stats.CandidatesPruned++
			prune.Charge("fpgrowth:frequency", 1)
		}
	}
	sort.Slice(fl, func(i, j int) bool {
		if fl[i].count != fl[j].count {
			return fl[i].count > fl[j].count
		}
		return fl[i].item < fl[j].item
	})
	orderOf := map[itemset.Item]int32{}
	itemOf := make([]itemset.Item, len(fl))
	for i, f := range fl {
		orderOf[f.item] = int32(i)
		itemOf[i] = f.item
	}

	endPass1()

	// Pass 2: build the FP-tree from ordered, filtered transactions.
	endBuild := span("fpgrowth:tree-construction")
	tree := newFPTree(len(fl))
	err = db.ScanErr(func(tid int, t itemset.Set) error {
		if tid%checkBatch == 0 {
			if err := guard.Check("fp-growth: tree construction"); err != nil {
				return err
			}
		}
		var path []int32
		for _, it := range t {
			if o, ok := orderOf[it]; ok {
				path = append(path, o)
			}
		}
		if len(path) == 0 {
			return nil
		}
		sort.Slice(path, func(i, j int) bool { return path[i] < path[j] })
		tree.insert(path, 1)
		return nil
	})
	stats.DBScans++
	if err != nil {
		endBuild()
		return nil, err
	}
	stats.LatticeBytes += tree.nodes * fpNodeBytes
	if err := guard.Check("fp-growth: tree construction"); err != nil {
		endBuild()
		return nil, err
	}
	endBuild()

	endGrow := span("fpgrowth:growth")
	defer endGrow()
	var levels [][]Counted
	emit := func(suffix []int32, support int) {
		items := make([]itemset.Item, len(suffix))
		for i, o := range suffix {
			items[i] = itemOf[o]
		}
		set := itemset.New(items...)
		stats.FrequentSets++
		stats.ValidSets++
		for len(levels) < set.Len() {
			levels = append(levels, nil)
		}
		levels[set.Len()-1] = append(levels[set.Len()-1], Counted{Set: set, Support: support})
	}

	// Recursive pattern growth: process header items bottom-up (least
	// frequent first), emit suffix ∪ {item}, project the conditional tree.
	// Each projection is one cancellation checkpoint.
	var grow func(t *fpTree, suffix []int32) error
	grow = func(t *fpTree, suffix []int32) error {
		for o := int32(len(t.headers)) - 1; o >= 0; o-- {
			sup := t.counts[o]
			if sup < minSupport {
				if sup > 0 {
					// A materialized extension of the suffix, discarded by
					// the support threshold.
					stats.CandidatesPruned++
					prune.Charge("fpgrowth:frequency", 1)
				}
				continue
			}
			if err := guard.Check("fp-growth: conditional projection"); err != nil {
				return err
			}
			newSuffix := append(append([]int32{}, suffix...), o)
			emit(newSuffix, sup)
			// Conditional pattern base: prefix paths of every node in the
			// chain, weighted by the node's count.
			cond := newFPTree(int(o)) // only items ordered before o can occur
			stats.CandidatesCounted++
			any := false
			for n := t.headers[o]; n != nil; n = n.next {
				var path []int32
				for p := n.parent; p != nil && p.item >= 0; p = p.parent {
					path = append(path, p.item)
				}
				if len(path) == 0 {
					continue
				}
				// Paths were collected leaf→root; reverse into tree order.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				cond.insert(path, n.count)
				any = true
			}
			if any {
				stats.LatticeBytes += cond.nodes * fpNodeBytes
				if err := grow(cond, newSuffix); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := grow(tree, nil); err != nil {
		return nil, err
	}

	// Pattern-growth emission order is suffix-driven; normalize per level.
	for _, lv := range levels {
		sort.Slice(lv, func(i, j int) bool { return lv[i].Set.Key() < lv[j].Set.Key() })
	}
	for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	return levels, nil
}
