package mine

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// TestSampleFrequentAlwaysExact: whatever the sampling does (clean run or
// border-triggered fallback), the returned levels must equal the exact
// answer.
func TestSampleFrequentAlwaysExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 40+r.Intn(60), 9, 6)
		minSup := 2 + r.Intn(4)
		want, err := AllFrequent(context.Background(), db, minSup, nil, nil, nil)
		if err != nil {
			return false
		}
		for _, p := range []SampleParams{
			{Fraction: 0.5, Slack: 0.3, Seed: seed},
			{Fraction: 0.25, Slack: 0.0, Seed: seed + 1}, // slackless: misses likely
			{Fraction: 1.0, Slack: 0.0, Seed: seed + 2},  // full sample: always exact
		} {
			got, res, err := SampleFrequent(context.Background(), db, minSup, nil, p, nil, nil)
			if err != nil {
				return false
			}
			if !mapsEqual(flatten(want), flatten(got)) {
				t.Logf("seed %d fraction %v: mismatch (exact=%v)", seed, p.Fraction, res.Exact)
				return false
			}
			if p.Fraction == 1 && p.Slack == 0 && !res.Exact {
				// A full "sample" mined at the true threshold can never
				// have a frequent border set.
				t.Logf("seed %d: full sample reported inexact", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSampleFrequentValidation(t *testing.T) {
	db := txdb.New([]itemset.Set{itemset.New(1)})
	if _, _, err := SampleFrequent(context.Background(), db, 1, nil, SampleParams{Fraction: 0}, nil, nil); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, _, err := SampleFrequent(context.Background(), db, 1, nil, SampleParams{Fraction: 2}, nil, nil); err == nil {
		t.Error("fraction 2 accepted")
	}
	if _, _, err := SampleFrequent(context.Background(), db, 1, nil, SampleParams{Fraction: 0.5, Slack: 1}, nil, nil); err == nil {
		t.Error("slack 1 accepted")
	}
	empty := txdb.New(nil)
	levels, res, err := SampleFrequent(context.Background(), empty, 1, nil, SampleParams{Fraction: 0.5}, nil, nil)
	if err != nil || levels != nil || !res.Exact {
		t.Errorf("empty db: %v %v %v", levels, res, err)
	}
}

// bruteMaximal computes maximal frequent sets by exhaustive enumeration.
func bruteMaximal(db *txdb.DB, minSup int) map[string]int {
	freq := bruteFrequent(db, minSup, db.ActiveItems())
	out := map[string]int{}
	for k, sup := range freq {
		s, _ := itemset.ParseKey(k)
		maximal := true
		for k2 := range freq {
			s2, _ := itemset.ParseKey(k2)
			if s2.Len() > s.Len() && s2.ContainsAll(s) {
				maximal = false
				break
			}
		}
		if maximal {
			out[k] = sup
		}
	}
	return out
}

// TestMaxFrequentMatchesBruteForce: the look-ahead miner must return
// exactly the maximal frequent sets.
func TestMaxFrequentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 20+r.Intn(30), 8, 6)
		minSup := 1 + r.Intn(4)
		got, err := MaxFrequent(context.Background(), db, minSup, nil, nil, nil)
		if err != nil {
			return false
		}
		gotMap := map[string]int{}
		for _, c := range got {
			gotMap[c.Set.Key()] = c.Support
		}
		return mapsEqual(gotMap, bruteMaximal(db, minSup))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMaxFrequentLookAhead: on a single long pattern the look-ahead must
// find the clique with very few candidate counts (no 2^n enumeration).
func TestMaxFrequentLookAhead(t *testing.T) {
	var txs []itemset.Set
	clique := itemset.New(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	for i := 0; i < 20; i++ {
		txs = append(txs, clique)
	}
	db := txdb.New(txs)
	stats := &Stats{}
	got, err := MaxFrequent(context.Background(), db, 5, nil, nil, stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Set.Equal(clique) || got[0].Support != 20 {
		t.Fatalf("maximal = %v", got)
	}
	// 12 singletons + 1 look-ahead: far below the 4095 subsets.
	if stats.CandidatesCounted > 50 {
		t.Errorf("look-ahead ineffective: %d candidates counted", stats.CandidatesCounted)
	}
}

func TestMaxFrequentEmpty(t *testing.T) {
	db := txdb.New([]itemset.Set{itemset.New(1)})
	got, err := MaxFrequent(context.Background(), db, 5, nil, nil, nil)
	if err != nil || got != nil {
		t.Errorf("unreachable threshold: %v %v", got, err)
	}
}

// bruteClosed computes closed frequent sets by exhaustive enumeration.
func bruteClosed(db *txdb.DB, minSup int) map[string]int {
	freq := bruteFrequent(db, minSup, db.ActiveItems())
	out := map[string]int{}
	for k, sup := range freq {
		s, _ := itemset.ParseKey(k)
		closedSet := true
		for k2, sup2 := range freq {
			s2, _ := itemset.ParseKey(k2)
			if s2.Len() > s.Len() && s2.ContainsAll(s) && sup2 == sup {
				closedSet = false
				break
			}
		}
		if closedSet {
			out[k] = sup
		}
	}
	return out
}

// TestClosedFrequentMatchesBruteForce: ClosedFrequent must return exactly
// the closed frequent sets, and they must subsume the maximal ones.
func TestClosedFrequentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 20+r.Intn(30), 8, 6)
		minSup := 1 + r.Intn(4)
		got, err := ClosedFrequent(context.Background(), db, minSup, nil, nil, nil)
		if err != nil {
			return false
		}
		gotMap := map[string]int{}
		for _, c := range got {
			gotMap[c.Set.Key()] = c.Support
		}
		if !mapsEqual(gotMap, bruteClosed(db, minSup)) {
			return false
		}
		// Every maximal set is closed.
		maxSets, err := MaxFrequent(context.Background(), db, minSup, nil, nil, nil)
		if err != nil {
			return false
		}
		for _, m := range maxSets {
			if gotMap[m.Set.Key()] != m.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClosedFrequentLosslessness(t *testing.T) {
	// Closedness is a lossless compression: every frequent set's support
	// equals the support of its smallest closed superset.
	r := rand.New(rand.NewSource(77))
	db := randomDB(r, 40, 8, 6)
	minSup := 2
	closed, err := ClosedFrequent(context.Background(), db, minSup, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, sup := range bruteFrequent(db, minSup, db.ActiveItems()) {
		s, _ := itemset.ParseKey(k)
		best := -1
		for _, c := range closed {
			if c.Set.ContainsAll(s) && (best < 0 || c.Support > best) {
				best = c.Support
			}
		}
		if best != sup {
			t.Fatalf("set %v: closure support %d, true %d", s, best, sup)
		}
	}
}
