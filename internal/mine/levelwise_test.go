package mine

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// randomDB builds a small random transaction database for oracle-based
// property tests.
func randomDB(r *rand.Rand, numTx, numItems, maxTxLen int) *txdb.DB {
	txs := make([]itemset.Set, numTx)
	for i := range txs {
		m := r.Intn(maxTxLen + 1)
		items := make([]itemset.Item, m)
		for j := range items {
			items[j] = itemset.Item(r.Intn(numItems))
		}
		txs[i] = itemset.New(items...)
	}
	return txdb.New(txs)
}

// bruteFrequent enumerates every non-empty subset of domain and returns the
// frequent ones with their supports — the ground-truth oracle.
func bruteFrequent(db *txdb.DB, minSup int, domain itemset.Set) map[string]int {
	res := map[string]int{}
	domain.ForEachSubset(func(s itemset.Set) bool {
		if sup := db.Support(s); sup >= minSup {
			res[s.Key()] = sup
		}
		return true
	})
	return res
}

// runAll drains a Levelwise, discarding any error (helper for tests whose
// configurations cannot fail).
func runAll(lw *Levelwise) [][]Counted {
	levels, _ := lw.RunAll()
	return levels
}

func flatten(levels [][]Counted) map[string]int {
	res := map[string]int{}
	for _, lv := range levels {
		for _, c := range lv {
			res[c.Set.Key()] = c.Support
		}
	}
	return res
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestAllFrequentSmall(t *testing.T) {
	db := txdb.New([]itemset.Set{
		itemset.New(1, 2, 3),
		itemset.New(1, 2),
		itemset.New(1, 3),
		itemset.New(2, 3),
		itemset.New(1, 2, 3),
	})
	levels, err := AllFrequent(context.Background(), db, 3, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(levels)
	want := bruteFrequent(db, 3, db.ActiveItems())
	if !mapsEqual(got, want) {
		t.Errorf("AllFrequent = %v, want %v", got, want)
	}
	// Level structure: level index i holds sets of size i+1.
	for i, lv := range levels {
		for _, c := range lv {
			if c.Set.Len() != i+1 {
				t.Errorf("level %d contains %v", i+1, c.Set)
			}
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if _, err := New(context.Background(), Config{}); err == nil {
		t.Error("nil DB accepted")
	}
	empty := txdb.New(nil)
	levels, err := AllFrequent(context.Background(), empty, 1, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 0 {
		t.Errorf("empty DB produced levels: %v", levels)
	}
	// Threshold above every support.
	db := txdb.New([]itemset.Set{itemset.New(1), itemset.New(2)})
	levels, _ = AllFrequent(context.Background(), db, 5, nil, nil, nil)
	if len(levels) != 0 {
		t.Errorf("unreachable threshold produced levels: %v", levels)
	}
	// MinSupport < 1 is clamped to 1.
	lw, _ := New(context.Background(), Config{DB: db, MinSupport: -3})
	if got := flatten(runAll(lw)); len(got) != 2 {
		t.Errorf("clamped threshold: got %d sets, want 2", len(got))
	}
	// Empty domain.
	lw, _ = New(context.Background(), Config{DB: db, MinSupport: 1, Domain: itemset.New()})
	if got := flatten(runAll(lw)); len(got) != 0 {
		t.Errorf("empty domain produced sets: %v", got)
	}
}

func TestQuickMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 12+r.Intn(20), 8, 5)
		minSup := 1 + r.Intn(4)
		levels, err := AllFrequent(context.Background(), db, minSup, nil, nil, nil)
		if err != nil {
			return false
		}
		return mapsEqual(flatten(levels), bruteFrequent(db, minSup, db.ActiveItems()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDomainRestriction(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	db := randomDB(r, 30, 10, 6)
	domain := itemset.New(0, 2, 4, 6, 8)
	levels, err := AllFrequent(context.Background(), db, 2, domain, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(levels)
	want := bruteFrequent(db, 2, domain)
	if !mapsEqual(got, want) {
		t.Errorf("domain mining = %v, want %v", got, want)
	}
}

// TestRequiredClass checks the existential-constraint machinery: with a
// Required class, the engine must report exactly the frequent sets that
// intersect the class, in both generation modes.
func TestRequiredClass(t *testing.T) {
	for _, mode := range []GenMode{GenPrefixJoin, GenExtension} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			db := randomDB(r, 15+r.Intn(25), 8, 5)
			minSup := 1 + r.Intn(3)
			var req []itemset.Item
			for i := 0; i < 8; i++ {
				if r.Intn(2) == 0 {
					req = append(req, itemset.Item(i))
				}
			}
			required := itemset.New(req...)
			if required.Empty() {
				required = itemset.New(0)
			}
			lw, err := New(context.Background(), Config{
				DB: db, MinSupport: minSup, Required: required, GenMode: mode,
			})
			if err != nil {
				return false
			}
			got := flatten(runAll(lw))
			want := map[string]int{}
			for k, v := range bruteFrequent(db, minSup, db.ActiveItems()) {
				s, _ := itemset.ParseKey(k)
				if s.Intersects(required) {
					want[k] = v
				}
			}
			return mapsEqual(got, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
	}
}

// TestCandidateFilter pushes an anti-monotone predicate (sum of item ids
// below a bound) and checks the result is exactly the frequent sets
// satisfying it.
func TestCandidateFilter(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 20+r.Intn(20), 8, 5)
		minSup := 1 + r.Intn(3)
		bound := r.Intn(20)
		sumOK := func(s itemset.Set) bool {
			sum := 0
			for _, it := range s {
				sum += int(it)
			}
			return sum <= bound
		}
		lw, err := New(context.Background(), Config{
			DB: db, MinSupport: minSup,
			CandidateFilter: func(_ int, s itemset.Set) bool { return sumOK(s) },
		})
		if err != nil {
			return false
		}
		got := flatten(runAll(lw))
		want := map[string]int{}
		for k, v := range bruteFrequent(db, minSup, db.ActiveItems()) {
			s, _ := itemset.ParseKey(k)
			if sumOK(s) {
				want[k] = v
			}
		}
		return mapsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReportValidDoesNotBreakGeneration(t *testing.T) {
	// ReportValid hides sets from the output but they must still seed
	// deeper levels: require sets of size ≥ 2 only.
	db := txdb.New([]itemset.Set{
		itemset.New(1, 2, 3), itemset.New(1, 2, 3), itemset.New(1, 2, 3),
	})
	lw, err := New(context.Background(), Config{
		DB: db, MinSupport: 3,
		ReportValid: func(s itemset.Set) bool { return s.Len() >= 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(runAll(lw))
	want := map[string]int{
		itemset.New(1, 2).Key():    3,
		itemset.New(1, 3).Key():    3,
		itemset.New(2, 3).Key():    3,
		itemset.New(1, 2, 3).Key(): 3,
	}
	if !mapsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMaxLevel(t *testing.T) {
	db := txdb.New([]itemset.Set{
		itemset.New(1, 2, 3, 4), itemset.New(1, 2, 3, 4),
	})
	lw, err := New(context.Background(), Config{DB: db, MinSupport: 2, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	levels := runAll(lw)
	if len(levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(levels))
	}
	if !lw.Done() {
		t.Error("not done after MaxLevel")
	}
	if sets, done, _ := lw.Step(); sets != nil || !done {
		t.Error("Step after done returned work")
	}
}

func TestStepwiseAndFrequentItems(t *testing.T) {
	db := txdb.New([]itemset.Set{
		itemset.New(1, 2), itemset.New(1, 2), itemset.New(3),
	})
	lw, err := New(context.Background(), Config{DB: db, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	l1, done, _ := lw.Step()
	if done || lw.Level() != 1 {
		t.Fatalf("after first step: done=%v level=%d", done, lw.Level())
	}
	if len(l1) != 2 {
		t.Fatalf("level 1 = %v", l1)
	}
	if got := lw.FrequentItems(); !got.Equal(itemset.New(1, 2)) {
		t.Errorf("FrequentItems = %v", got)
	}
	l2, _, _ := lw.Step()
	if len(l2) != 1 || !l2[0].Set.Equal(itemset.New(1, 2)) || l2[0].Support != 2 {
		t.Errorf("level 2 = %v", l2)
	}
}

// TestFrequentItemsIncludesNonRequired checks L1 contains non-required
// frequent items (the reduction constants need all of L1, not just valid
// singletons).
func TestFrequentItemsIncludesNonRequired(t *testing.T) {
	db := txdb.New([]itemset.Set{
		itemset.New(1, 2), itemset.New(1, 2), itemset.New(2),
	})
	lw, err := New(context.Background(), Config{DB: db, MinSupport: 2, Required: itemset.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	l1, _, _ := lw.Step()
	if len(l1) != 1 || !l1[0].Set.Equal(itemset.New(1)) {
		t.Fatalf("valid level 1 = %v, want only {1}", l1)
	}
	if got := lw.FrequentItems(); !got.Equal(itemset.New(1, 2)) {
		t.Errorf("FrequentItems = %v, want {1, 2}", got)
	}
}

// TestStatsCounters checks the ccc-relevant accounting: with a Required
// class every candidate counted beyond level 1 is valid.
func TestStatsCounters(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := randomDB(r, 40, 8, 5)
	stats := &Stats{}
	lw, err := New(context.Background(), Config{DB: db, MinSupport: 2, Required: itemset.New(0, 1), Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	// Instrument: wrap CandidateFilter to observe candidates (always true).
	sawInvalid := false
	lw.cfg.CandidateFilter = func(level int, s itemset.Set) bool {
		if level >= 2 && !s.Intersects(itemset.New(0, 1)) {
			sawInvalid = true
		}
		return true
	}
	lw.RunAll()
	if sawInvalid {
		t.Error("counted an invalid candidate beyond level 1")
	}
	if stats.CandidatesCounted == 0 || stats.DBScans == 0 {
		t.Errorf("stats not accumulated: %v", stats)
	}
	if stats.FrequentSets < stats.ValidSets {
		t.Errorf("frequent < valid: %v", stats)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{CandidatesCounted: 1, ItemConstraintChecks: 2, SetConstraintChecks: 3,
		PairChecks: 4, FrequentSets: 5, ValidSets: 6, DBScans: 7}
	b := a
	a.Add(b)
	if a.CandidatesCounted != 2 || a.DBScans != 14 || a.ValidSets != 12 {
		t.Errorf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

// TestGenModesAgree cross-checks the two candidate generators end to end.
func TestGenModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 25, 8, 6)
		minSup := 1 + r.Intn(3)
		a, err1 := New(context.Background(), Config{DB: db, MinSupport: minSup, GenMode: GenPrefixJoin})
		b, err2 := New(context.Background(), Config{DB: db, MinSupport: minSup, GenMode: GenExtension})
		if err1 != nil || err2 != nil {
			return false
		}
		return mapsEqual(flatten(runAll(a)), flatten(runAll(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParallelCountingMatchesSerial: worker counts must be identical to
// the serial path on random databases.
func TestParallelCountingMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 40+r.Intn(40), 9, 6)
		minSup := 1 + r.Intn(3)
		serial, err1 := AllFrequent(context.Background(), db, minSup, nil, nil, nil)
		lw, err2 := New(context.Background(), Config{DB: db, MinSupport: minSup, Workers: 4})
		if err1 != nil || err2 != nil {
			return false
		}
		return mapsEqual(flatten(serial), flatten(runAll(lw)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
