package mine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Budget caps the resources one query evaluation may consume. A zero limit
// disables that dimension. A Budget accumulates consumption across every
// miner it is handed to (both lattices of a dovetailed CFQ, every partition
// of a partitioned run), so it expresses a per-query limit, not a per-miner
// one. Budgets are stateful: use a fresh Budget for each evaluation and
// share it by pointer.
type Budget struct {
	// MaxCandidates caps the number of candidate sets whose support is
	// counted (Stats.CandidatesCounted).
	MaxCandidates int64
	// MaxFrequentSets caps the number of frequent sets discovered
	// (Stats.FrequentSets).
	MaxFrequentSets int64
	// MaxLatticeBytes caps the estimated memory allocated for lattice
	// state (Stats.LatticeBytes) — candidate sets, per-level frequent
	// sets, tid bitmaps, FP-tree nodes. The estimate is cumulative over
	// the run, so it bounds allocation pressure rather than live heap.
	MaxLatticeBytes int64
	// SoftDeadline, when non-zero, aborts mining at the first checkpoint
	// past this instant with a *BudgetError (reason "deadline"). Unlike a
	// context deadline it never interrupts a counting batch midway and it
	// reports partial progress through the error's Stats.
	SoftDeadline time.Time
	// Checkpoint, when non-nil, is invoked at every cancellation
	// checkpoint with a label describing where mining currently is. A
	// non-nil return aborts mining with that error (a *BudgetError is
	// propagated as such, with Where and Stats filled in). This is the
	// fault-injection and observability hook: internal/faultinject wires
	// deterministic failures through it, and callers can use it for
	// progress reporting or custom abort policies.
	Checkpoint func(where string) error

	// Shared consumption totals, published by every Guard drawing from
	// this budget.
	candidates atomic.Int64
	frequent   atomic.Int64
	bytes      atomic.Int64
}

// Used reports the consumption published to the budget so far.
func (b *Budget) Used() (candidates, frequentSets, latticeBytes int64) {
	return b.candidates.Load(), b.frequent.Load(), b.bytes.Load()
}

// Budget-exhaustion resources reported in BudgetError.Resource.
const (
	ResourceCandidates   = "candidates"
	ResourceFrequentSets = "frequent-sets"
	ResourceLatticeBytes = "lattice-bytes"
	ResourceDeadline     = "deadline"
)

// BudgetError reports that mining stopped because a resource budget was
// exhausted. It carries a snapshot of the work counters at the moment of
// the abort, so callers can report partial progress instead of losing it.
type BudgetError struct {
	// Resource names the exhausted dimension (Resource* constants).
	Resource string
	// Where is the checkpoint label at which the overrun was detected.
	Where string
	// Limit and Used are the configured cap and the consumption observed
	// (Used/Limit are zero for deadline overruns).
	Limit, Used int64
	// Stats is the partial-progress snapshot of the aborting miner.
	Stats Stats
}

// Error renders the overrun.
func (e *BudgetError) Error() string {
	if e.Resource == ResourceDeadline {
		return fmt.Sprintf("mine: soft deadline exceeded at %s", e.Where)
	}
	return fmt.Sprintf("mine: %s budget exhausted at %s: used %d of %d",
		e.Resource, e.Where, e.Used, e.Limit)
}

// checkBatch is how many transactions a counting loop processes between
// checkpoints: large enough that checkpoint overhead is unmeasurable, small
// enough that cancellation latency stays within one batch.
const checkBatch = 2048

// Guard bundles the runtime controls threaded through one miner: the
// cancellation context, the (optional, shared) resource budget, and the
// stats the budget is charged from. Each miner owns one Guard and calls
// Check at its checkpoints; a Guard is not safe for concurrent use (worker
// goroutines poll the context directly instead).
type Guard struct {
	ctx    context.Context
	budget *Budget
	stats  *Stats

	// Last published stats values, so a budget shared across sequential
	// miners that also share a Stats (partitioned mining) is charged each
	// increment exactly once.
	lastCand, lastFreq, lastBytes int64
}

// NewGuard creates a Guard. A nil ctx means context.Background(); a nil
// budget disables resource limits; a nil stats gets a private scratch
// counter set.
func NewGuard(ctx context.Context, budget *Budget, stats *Stats) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &Guard{
		ctx:       ctx,
		budget:    budget,
		stats:     stats,
		lastCand:  stats.CandidatesCounted,
		lastFreq:  stats.FrequentSets,
		lastBytes: stats.LatticeBytes,
	}
}

// Ctx returns the guard's context, for worker goroutines that poll
// cancellation directly.
func (g *Guard) Ctx() context.Context { return g.ctx }

// Check is a cancellation/budget checkpoint. It consults, in order: the
// fault-injection hook, context cancellation, and the budget's limits
// (charging this guard's stats increments to the shared totals first). The
// returned error wraps where mining stopped; ctx.Err() is reachable through
// errors.Is, and budget overruns are a *BudgetError carrying partial Stats.
func (g *Guard) Check(where string) error {
	g.stats.Checkpoints++
	b := g.budget
	if b != nil && b.Checkpoint != nil {
		if err := b.Checkpoint(where); err != nil {
			var be *BudgetError
			if errors.As(err, &be) {
				if be.Where == "" {
					be.Where = where
				}
				be.Stats = *g.stats
				return be
			}
			return fmt.Errorf("mine: %s: %w", where, err)
		}
	}
	if err := g.ctx.Err(); err != nil {
		return fmt.Errorf("mine: %s: %w", where, err)
	}
	if b == nil {
		return nil
	}
	publish := func(total *atomic.Int64, cur int64, last *int64) int64 {
		d := cur - *last
		*last = cur
		if d == 0 {
			return total.Load()
		}
		return total.Add(d)
	}
	cand := publish(&b.candidates, g.stats.CandidatesCounted, &g.lastCand)
	freq := publish(&b.frequent, g.stats.FrequentSets, &g.lastFreq)
	bytes := publish(&b.bytes, g.stats.LatticeBytes, &g.lastBytes)
	switch {
	case b.MaxCandidates > 0 && cand > b.MaxCandidates:
		return g.overrun(where, ResourceCandidates, b.MaxCandidates, cand)
	case b.MaxFrequentSets > 0 && freq > b.MaxFrequentSets:
		return g.overrun(where, ResourceFrequentSets, b.MaxFrequentSets, freq)
	case b.MaxLatticeBytes > 0 && bytes > b.MaxLatticeBytes:
		return g.overrun(where, ResourceLatticeBytes, b.MaxLatticeBytes, bytes)
	}
	if !b.SoftDeadline.IsZero() && time.Now().After(b.SoftDeadline) {
		return g.overrun(where, ResourceDeadline, 0, 0)
	}
	return nil
}

func (g *Guard) overrun(where, resource string, limit, used int64) error {
	obs.MBudgetTrips.Inc()
	return &BudgetError{Resource: resource, Where: where, Limit: limit, Used: used, Stats: *g.stats}
}

// setBytes estimates the lattice memory retained for one stored k-itemset:
// the rank-space candidate, the original-space copy, and hash-key overhead.
func setBytes(k int) int64 { return int64(16*k + 64) }
