package mine

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// distinctStats fills every Stats field with a distinct non-zero value so a
// field dropped by Add/Minus/Counters/String shows up as a mismatch.
func distinctStats(t *testing.T) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("Stats field %s is %v; update the stats tests",
				v.Type().Field(i).Name, v.Field(i).Kind())
		}
		v.Field(i).SetInt(int64(100 + i))
	}
	return s
}

// TestStatsAddMinusEveryField: Add and Minus must cover every field —
// reflection catches a field added to Stats but forgotten in either.
func TestStatsAddMinusEveryField(t *testing.T) {
	s := distinctStats(t)
	sum := s
	sum.Add(s)
	v := reflect.ValueOf(sum)
	orig := reflect.ValueOf(s)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Int() != 2*orig.Field(i).Int() {
			t.Errorf("Add dropped field %s", v.Type().Field(i).Name)
		}
	}
	if diff := sum.Minus(s); diff != s {
		t.Errorf("Minus dropped a field: %+v", diff)
	}
	if diff := s.Minus(s); diff != (Stats{}) {
		t.Errorf("Minus(self) = %+v", diff)
	}
}

// TestStatsCountersRoundTrip: Counters/FromCounters is a bijection over
// every field, and the counter names match the obs vocabulary.
func TestStatsCountersRoundTrip(t *testing.T) {
	s := distinctStats(t)
	c := s.Counters()
	if len(c) != reflect.TypeOf(s).NumField() {
		t.Errorf("Counters has %d keys for %d fields", len(c), reflect.TypeOf(s).NumField())
	}
	if back := FromCounters(c); back != s {
		t.Errorf("round-trip = %+v, want %+v", back, s)
	}
	for k := range c {
		if strings.ToLower(k) != k || strings.Contains(k, " ") {
			t.Errorf("counter key %q is not snake_case", k)
		}
	}
}

// TestStatsStringEveryValue: the one-line rendering mentions every field's
// value.
func TestStatsStringEveryValue(t *testing.T) {
	s := distinctStats(t)
	str := s.String()
	v := reflect.ValueOf(s)
	for i := 0; i < v.NumField(); i++ {
		if !strings.Contains(str, fmt.Sprintf("=%d", v.Field(i).Int())) {
			t.Errorf("String() missing field %s: %s", v.Type().Field(i).Name, str)
		}
	}
}

// TestSpanDeltasSumToTotals: the attribution contract across all four
// miners — run each on the same small Quest database under a tracer and
// require the sum of every span's counter delta (RunReport.Totals) to
// reproduce the run's total Stats exactly.
func TestSpanDeltasSumToTotals(t *testing.T) {
	p := gen.Default(200) // 500 transactions
	p.Seed = 5
	db, err := gen.Quest(p)
	if err != nil {
		t.Fatal(err)
	}
	minSup := 10

	miners := []struct {
		name string
		run  func(ctx context.Context, stats *Stats) error
	}{
		{"levelwise", func(ctx context.Context, stats *Stats) error {
			_, err := AllFrequent(ctx, db, minSup, nil, nil, stats)
			return err
		}},
		{"fpgrowth", func(ctx context.Context, stats *Stats) error {
			_, err := FPGrowth(ctx, db, minSup, nil, nil, stats)
			return err
		}},
		{"eclat", func(ctx context.Context, stats *Stats) error {
			_, err := VerticalFrequent(ctx, db, minSup, nil, nil, stats)
			return err
		}},
		{"partition", func(ctx context.Context, stats *Stats) error {
			_, err := PartitionFrequent(ctx, db, minSup, nil, 3, nil, stats)
			return err
		}},
	}
	wantSpans := map[string][]string{
		"levelwise": {"project", "level-1", "level-2"},
		"fpgrowth":  {"fpgrowth:frequency-pass", "fpgrowth:tree-construction", "fpgrowth:growth"},
		"eclat":     {"eclat:vertical-projection", "eclat:dfs"},
		"partition": {"partition-0", "partition-2", "partition-verify"},
	}
	for _, m := range miners {
		t.Run(m.name, func(t *testing.T) {
			tracer := obs.NewTracer(obs.Options{Name: m.name})
			ctx := obs.WithTracer(context.Background(), tracer)
			stats := &Stats{}
			if err := m.run(ctx, stats); err != nil {
				t.Fatal(err)
			}
			rep := tracer.Report()
			if got := FromCounters(rep.Totals); got != *stats {
				t.Errorf("span deltas sum to %+v\nrun totals are  %+v", got, *stats)
			}
			for _, name := range wantSpans[m.name] {
				if rep.Find(name) == nil {
					t.Errorf("span %q missing from report", name)
				}
			}
			// Re-running without a tracer must produce identical stats
			// (instrumentation is observation only).
			plain := &Stats{}
			if err := m.run(context.Background(), plain); err != nil {
				t.Fatal(err)
			}
			if *plain != *stats {
				t.Errorf("tracing changed the work: traced %+v, plain %+v", *stats, *plain)
			}
		})
	}
}
