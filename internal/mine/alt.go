package mine

import (
	"context"
	"fmt"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// Miner selects which complete frequent-set mining algorithm backs a
// generate-and-test run. The constrained levelwise miner (CAP's host) is the
// only algorithm that supports Required classes, candidate filters and
// preset L1 frontiers, so alternate miners are legal only where every
// constraint is enforced after mining — i.e. the apriori+ baseline and
// unconstrained side queries.
type Miner int

const (
	// MinerLevelwise is the default breadth-first Apriori miner.
	MinerLevelwise Miner = iota
	// MinerFPGrowth mines via FP-growth conditional trees (two passes plus
	// projections; no candidate generation).
	MinerFPGrowth
	// MinerEclat mines depth-first over vertical tid-lists.
	MinerEclat
	// MinerPartition mines with the two-phase partition algorithm
	// (exactly two logical database passes).
	MinerPartition
)

var minerNames = [...]string{"levelwise", "fpgrowth", "eclat", "partition"}

func (m Miner) String() string {
	if m < 0 || int(m) >= len(minerNames) {
		return fmt.Sprintf("miner(%d)", int(m))
	}
	return minerNames[m]
}

// ParseMiner maps a wire name to a Miner. The empty string is the default
// levelwise miner.
func ParseMiner(name string) (Miner, error) {
	if name == "" {
		return MinerLevelwise, nil
	}
	for i, n := range minerNames {
		if n == name {
			return Miner(i), nil
		}
	}
	return MinerLevelwise, fmt.Errorf("unknown miner %q", name)
}

// Miners lists every miner in enum order.
func Miners() []Miner {
	out := make([]Miner, len(minerNames))
	for i := range out {
		out[i] = Miner(i)
	}
	return out
}

// defaultPartitions is the partition count FrequentLevels uses for
// MinerPartition: enough to shrink per-partition lattices without inflating
// the phase-2 candidate pool on the paper's workload scales.
const defaultPartitions = 4

// FrequentLevels mines every frequent itemset over domain with the selected
// algorithm, returning levels in the same shape as AllFrequent (level k at
// index k-1, lexicographic within a level). All miners honour ctx, budget
// and stats identically, so the caller's accounting is algorithm-agnostic.
func FrequentLevels(ctx context.Context, m Miner, db *txdb.DB, minSupport int, domain itemset.Set, budget *Budget, stats *Stats) ([][]Counted, error) {
	switch m {
	case MinerLevelwise:
		return AllFrequent(ctx, db, minSupport, domain, budget, stats)
	case MinerFPGrowth:
		return FPGrowth(ctx, db, minSupport, domain, budget, stats)
	case MinerEclat:
		return VerticalFrequent(ctx, db, minSupport, domain, budget, stats)
	case MinerPartition:
		return PartitionFrequent(ctx, db, minSupport, domain, defaultPartitions, budget, stats)
	default:
		return nil, fmt.Errorf("unknown miner %d", int(m))
	}
}
