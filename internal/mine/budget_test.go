package mine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/txdb"
)

// minerCase adapts the four frequent-set miners to one shape so the
// fault-injection sweep can cover them uniformly.
type minerCase struct {
	name string
	run  func(ctx context.Context, db *txdb.DB, b *Budget, s *Stats) ([][]Counted, error)
}

func allMiners() []minerCase {
	return []minerCase{
		{"levelwise", func(ctx context.Context, db *txdb.DB, b *Budget, s *Stats) ([][]Counted, error) {
			return AllFrequent(ctx, db, 2, nil, b, s)
		}},
		{"eclat", func(ctx context.Context, db *txdb.DB, b *Budget, s *Stats) ([][]Counted, error) {
			return VerticalFrequent(ctx, db, 2, nil, b, s)
		}},
		{"partition", func(ctx context.Context, db *txdb.DB, b *Budget, s *Stats) ([][]Counted, error) {
			return PartitionFrequent(ctx, db, 2, nil, 3, b, s)
		}},
		{"fp-growth", func(ctx context.Context, db *txdb.DB, b *Budget, s *Stats) ([][]Counted, error) {
			return FPGrowth(ctx, db, 2, nil, b, s)
		}},
	}
}

// TestFaultInjectionAllMiners aborts every miner at its first, middle, and
// last checkpoint, and checks that (a) the injected error surfaces wrapped
// but errors.Is-reachable, and (b) an immediate clean re-run returns exactly
// the baseline result — aborting leaves no residue.
func TestFaultInjectionAllMiners(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	db := randomDB(r, 120, 10, 6)
	for _, m := range allMiners() {
		t.Run(m.name, func(t *testing.T) {
			probe := faultinject.Count()
			baseline, err := m.run(context.Background(), db, &Budget{Checkpoint: probe.Checkpoint}, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := probe.Seen()
			if n < 3 {
				t.Fatalf("only %d checkpoints; first/middle/last are not distinct", n)
			}
			want := flatten(baseline)
			for _, at := range []int64{1, (n + 1) / 2, n} {
				inj := faultinject.Fail(at, nil)
				_, err := m.run(context.Background(), db, &Budget{Checkpoint: inj.Checkpoint}, nil)
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("inject at %d/%d: err = %v, want ErrInjected", at, n, err)
				}
				if fired, where := inj.Fired(); !fired || where == "" {
					t.Fatalf("inject at %d/%d: fired=%v where=%q", at, n, fired, where)
				}
				// Clean re-run after the abort must match the baseline.
				again, err := m.run(context.Background(), db, nil, nil)
				if err != nil {
					t.Fatalf("re-run after abort at %d: %v", at, err)
				}
				if !mapsEqual(flatten(again), want) {
					t.Errorf("re-run after abort at %d/%d differs from baseline", at, n)
				}
			}
		})
	}
}

// TestCancellationAllMiners: a cancellation landing mid-run (delivered at a
// checkpoint, exactly as an external cancel would) surfaces as a wrapped
// context.Canceled from every miner.
func TestCancellationAllMiners(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	db := randomDB(r, 120, 10, 6)
	for _, m := range allMiners() {
		t.Run(m.name, func(t *testing.T) {
			probe := faultinject.Count()
			if _, err := m.run(context.Background(), db, &Budget{Checkpoint: probe.Checkpoint}, nil); err != nil {
				t.Fatal(err)
			}
			mid := (probe.Seen() + 1) / 2
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inj := faultinject.Cancel(mid, cancel)
			_, err := m.run(ctx, db, &Budget{Checkpoint: inj.Checkpoint}, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Pre-cancelled context: the miner must not start real work.
			done, cancel2 := context.WithCancel(context.Background())
			cancel2()
			if _, err := m.run(done, db, nil, nil); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-cancelled ctx: err = %v", err)
			}
		})
	}
}

// TestBudgetExhaustionTyped: each resource limit produces a *BudgetError
// naming the resource, the checkpoint, and carrying non-empty partial stats.
func TestBudgetExhaustionTyped(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	db := randomDB(r, 120, 10, 6)
	cases := []struct {
		resource string
		budget   func() *Budget // fresh per run: budgets are stateful
	}{
		{ResourceCandidates, func() *Budget { return &Budget{MaxCandidates: 1} }},
		{ResourceFrequentSets, func() *Budget { return &Budget{MaxFrequentSets: 1} }},
		{ResourceLatticeBytes, func() *Budget { return &Budget{MaxLatticeBytes: 1} }},
		{ResourceDeadline, func() *Budget { return &Budget{SoftDeadline: time.Now().Add(-time.Second)} }},
	}
	for _, m := range allMiners() {
		for _, c := range cases {
			t.Run(m.name+"/"+c.resource, func(t *testing.T) {
				stats := &Stats{}
				_, err := m.run(context.Background(), db, c.budget(), stats)
				var be *BudgetError
				if !errors.As(err, &be) {
					t.Fatalf("err = %v, want *BudgetError", err)
				}
				if be.Resource != c.resource {
					t.Errorf("Resource = %q, want %q", be.Resource, c.resource)
				}
				if be.Where == "" {
					t.Error("Where is empty")
				}
				if be.Stats.Checkpoints == 0 {
					t.Error("partial stats not populated")
				}
				if c.resource != ResourceDeadline && be.Used <= be.Limit {
					t.Errorf("Used %d <= Limit %d", be.Used, be.Limit)
				}
			})
		}
	}
}

// TestBudgetAbortsWithinOneCheckpoint: with MaxCandidates = 1, levelwise
// counting must stop before finishing level 1 wholesale — consumption when
// the error surfaces may overshoot by at most one checkpoint batch.
func TestBudgetAbortsWithinOneCheckpoint(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	db := randomDB(r, 200, 12, 7)
	b := &Budget{MaxCandidates: 1}
	_, err := AllFrequent(context.Background(), db, 2, nil, b, nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v", err)
	}
	cand, _, _ := b.Used()
	// Level-1 counting publishes all singleton candidates at once; that is
	// the one-checkpoint granularity bound.
	if cand > 12 {
		t.Errorf("candidates charged %d, want <= one checkpoint batch (12)", cand)
	}
}

// TestBudgetSharedAcrossMiners: sequential miners drawing from one budget
// pool charge it cumulatively — the second run trips a limit the first
// consumed most of.
func TestBudgetSharedAcrossMiners(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	db := randomDB(r, 60, 8, 5)
	probe, err := AllFrequent(context.Background(), db, 2, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, lv := range probe {
		total += int64(len(lv))
	}
	if total < 2 {
		t.Skip("database too sparse")
	}
	// Allow ~1.5 full runs worth of frequent sets: run one succeeds, run two
	// must exhaust the shared pool.
	b := &Budget{MaxFrequentSets: total + total/2}
	if _, err := AllFrequent(context.Background(), db, 2, nil, b, nil); err != nil {
		t.Fatalf("first run: %v", err)
	}
	_, err = AllFrequent(context.Background(), db, 2, nil, b, nil)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != ResourceFrequentSets {
		t.Fatalf("second run: err = %v, want frequent-sets BudgetError", err)
	}
}

// TestNoGoroutineLeakOnCancel: cancelling a parallel counting run must not
// strand worker goroutines — they rejoin before the miner returns.
func TestNoGoroutineLeakOnCancel(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	db := randomDB(r, 4000, 14, 8)
	// Calibrate: how many checkpoints does a full parallel run pass?
	probe := faultinject.Count()
	lw, err := New(context.Background(), Config{DB: db, MinSupport: 2, Workers: 4, Budget: &Budget{Checkpoint: probe.Checkpoint}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lw.RunAll(); err != nil {
		t.Fatal(err)
	}
	mid := (probe.Seen() + 1) / 2
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		inj := faultinject.Cancel(mid, cancel)
		lw, err := New(ctx, Config{DB: db, MinSupport: 2, Workers: 4, Budget: &Budget{Checkpoint: inj.Checkpoint}})
		if err == nil {
			_, err = lw.RunAll()
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
		}
		cancel()
	}
	// Workers always rejoin via wg.Wait before RunAll returns, so the count
	// settles immediately; poll briefly to absorb runtime noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled runs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestErrLatched: after an aborted Step, the Levelwise is done and Err
// returns the same error on every later call.
func TestErrLatched(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	db := randomDB(r, 80, 9, 5)
	// New itself passes projection checkpoints; aim the fault at the first
	// checkpoint after construction so it lands in Step.
	probe := faultinject.Count()
	if _, err := New(context.Background(), Config{DB: db, MinSupport: 2, Budget: &Budget{Checkpoint: probe.Checkpoint}}); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Fail(probe.Seen()+1, nil)
	lw, err := New(context.Background(), Config{DB: db, MinSupport: 2, Budget: &Budget{Checkpoint: inj.Checkpoint}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = lw.Step()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Step err = %v", err)
	}
	if !lw.Done() {
		t.Error("miner not done after abort")
	}
	if sets, done, err2 := lw.Step(); sets != nil || !done || !errors.Is(err2, faultinject.ErrInjected) {
		t.Errorf("Step after abort = (%v, %v, %v)", sets, done, err2)
	}
	if !errors.Is(lw.Err(), faultinject.ErrInjected) {
		t.Errorf("Err() = %v", lw.Err())
	}
}
