package mine

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// TestVerticalMatchesLevelwise cross-checks the Eclat vertical miner
// against the levelwise engine (two fully independent implementations) on
// random databases.
func TestVerticalMatchesLevelwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 15+r.Intn(25), 9, 5)
		minSup := 1 + r.Intn(4)
		a, err1 := AllFrequent(context.Background(), db, minSup, nil, nil, nil)
		b, err2 := VerticalFrequent(context.Background(), db, minSup, nil, nil, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return mapsEqual(flatten(a), flatten(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPartitionMatchesLevelwise cross-checks the two-phase partition
// algorithm, across partition counts.
func TestPartitionMatchesLevelwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 15+r.Intn(25), 9, 5)
		minSup := 1 + r.Intn(4)
		want, err := AllFrequent(context.Background(), db, minSup, nil, nil, nil)
		if err != nil {
			return false
		}
		for _, parts := range []int{1, 2, 3, 7, 1000} {
			got, err := PartitionFrequent(context.Background(), db, minSup, nil, parts, nil, nil)
			if err != nil {
				return false
			}
			if !mapsEqual(flatten(want), flatten(got)) {
				t.Logf("seed %d parts %d: mismatch", seed, parts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVerticalDomainAndOrder(t *testing.T) {
	db := txdb.New([]itemset.Set{
		itemset.New(1, 2, 3), itemset.New(1, 2, 3), itemset.New(2, 3, 4),
	})
	levels, err := VerticalFrequent(context.Background(), db, 2, itemset.New(1, 2, 3), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		itemset.New(1).Key():       2,
		itemset.New(2).Key():       3,
		itemset.New(3).Key():       3,
		itemset.New(1, 2).Key():    2,
		itemset.New(1, 3).Key():    2,
		itemset.New(2, 3).Key():    3,
		itemset.New(1, 2, 3).Key(): 2,
	}
	if !mapsEqual(flatten(levels), want) {
		t.Errorf("vertical = %v", flatten(levels))
	}
	// Levels sorted lexicographically.
	for _, lv := range levels {
		for i := 1; i < len(lv); i++ {
			if lv[i-1].Set.Key() >= lv[i].Set.Key() {
				t.Errorf("level not sorted: %v before %v", lv[i-1].Set, lv[i].Set)
			}
		}
	}
}

func TestPartitionTwoScans(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	db := randomDB(r, 60, 8, 5)
	db.ResetScans()
	if _, err := PartitionFrequent(context.Background(), db, 3, nil, 4, nil, nil); err != nil {
		t.Fatal(err)
	}
	// The partition algorithm reads the source database twice: once to
	// split it, once to verify (the per-partition mining scans copies).
	if got := db.Scans(); got > 2 {
		t.Errorf("source db scanned %d times, want <= 2", got)
	}
}

func TestPartitionEdges(t *testing.T) {
	empty := txdb.New(nil)
	levels, err := PartitionFrequent(context.Background(), empty, 1, nil, 5, nil, nil)
	if err != nil || levels != nil {
		t.Errorf("empty db: %v, %v", levels, err)
	}
	db := txdb.New([]itemset.Set{itemset.New(1)})
	levels, err = PartitionFrequent(context.Background(), db, 1, nil, 0, nil, nil) // clamped partitions
	if err != nil || len(levels) != 1 {
		t.Errorf("clamped partitions: %v, %v", levels, err)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.set(i)
	}
	if b.count() != 4 {
		t.Errorf("count = %d", b.count())
	}
	c := newBitset(130)
	c.set(63)
	c.set(100)
	dst := newBitset(130)
	if n := andInto(dst, b, c); n != 1 {
		t.Errorf("and count = %d", n)
	}
	if dst.count() != 1 {
		t.Errorf("dst count = %d", dst.count())
	}
}

// TestFPGrowthMatchesLevelwise cross-checks the pattern-growth miner (a
// third independent paradigm) against the levelwise engine.
func TestFPGrowthMatchesLevelwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 15+r.Intn(35), 9, 6)
		minSup := 1 + r.Intn(4)
		a, err1 := AllFrequent(context.Background(), db, minSup, nil, nil, nil)
		b, err2 := FPGrowth(context.Background(), db, minSup, nil, nil, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return mapsEqual(flatten(a), flatten(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFPGrowthWithDomain(t *testing.T) {
	db := txdb.New([]itemset.Set{
		itemset.New(1, 2, 3), itemset.New(1, 2, 3), itemset.New(2, 3, 4), itemset.New(4),
	})
	levels, err := FPGrowth(context.Background(), db, 2, itemset.New(2, 3, 4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		itemset.New(2).Key():    3,
		itemset.New(3).Key():    3,
		itemset.New(4).Key():    2,
		itemset.New(2, 3).Key(): 3,
	}
	if !mapsEqual(flatten(levels), want) {
		t.Errorf("FPGrowth = %v, want %v", flatten(levels), want)
	}
	// Two scans total, independent of lattice depth.
	db.ResetScans()
	if _, err := FPGrowth(context.Background(), db, 1, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.Scans(); got != 2 {
		t.Errorf("FPGrowth scanned %d times, want 2", got)
	}
}

func TestFPGrowthEmpty(t *testing.T) {
	levels, err := FPGrowth(context.Background(), txdb.New(nil), 1, nil, nil, nil)
	if err != nil || len(levels) != 0 {
		t.Errorf("empty db: %v %v", levels, err)
	}
}
