package mine

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// TestPruneChargesSumToStats: the pruning-attribution contract at the miner
// level — with a PruneSet in the context, each of the four miners charges
// every discarded candidate to exactly one site, so the site totals
// reproduce Stats.CandidatesPruned; and attribution is observation only
// (stats are identical with and without the set installed).
func TestPruneChargesSumToStats(t *testing.T) {
	p := gen.Default(200) // 500 transactions
	p.Seed = 5
	db, err := gen.Quest(p)
	if err != nil {
		t.Fatal(err)
	}
	minSup := 20

	miners := []struct {
		name string
		run  func(ctx context.Context, stats *Stats) error
	}{
		{"levelwise", func(ctx context.Context, stats *Stats) error {
			_, err := AllFrequent(ctx, db, minSup, nil, nil, stats)
			return err
		}},
		{"fpgrowth", func(ctx context.Context, stats *Stats) error {
			_, err := FPGrowth(ctx, db, minSup, nil, nil, stats)
			return err
		}},
		{"eclat", func(ctx context.Context, stats *Stats) error {
			_, err := VerticalFrequent(ctx, db, minSup, nil, nil, stats)
			return err
		}},
		{"partition", func(ctx context.Context, stats *Stats) error {
			// Two partitions: the per-partition support threshold stays high
			// enough that the local mining phase does not explode.
			_, err := PartitionFrequent(ctx, db, minSup, nil, 2, nil, stats)
			return err
		}},
	}
	for _, m := range miners {
		t.Run(m.name, func(t *testing.T) {
			prune := obs.NewPruneSet()
			ctx := obs.WithPruning(context.Background(), prune)
			stats := &Stats{}
			if err := m.run(ctx, stats); err != nil {
				t.Fatal(err)
			}
			if stats.CandidatesPruned == 0 {
				t.Fatal("fixture prunes nothing; pick a higher minSup")
			}
			if got, want := prune.Total(), stats.CandidatesPruned; got != want {
				t.Errorf("site charges sum to %d, stats pruned %d\nsites: %v",
					got, want, prune.Snapshot())
			}
			for _, site := range prune.Sites() {
				if site == "" {
					t.Error("empty site key charged")
				}
			}
			plain := &Stats{}
			if err := m.run(context.Background(), plain); err != nil {
				t.Fatal(err)
			}
			if *plain != *stats {
				t.Errorf("attribution changed the work: attributed %+v, plain %+v", *stats, *plain)
			}
		})
	}
}
