package mine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// TestPresetL1SkipsCounting: with preset level-1 results the first step
// must perform no counting pass and charge no candidates, and later levels
// must behave exactly as in a fresh run.
func TestPresetL1SkipsCounting(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db := randomDB(r, 40, 8, 5)

	fresh, err := New(context.Background(), Config{DB: db, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Step()
	preset := fresh.FrequentItemCounts()
	want := flatten(runAll(fresh))
	// RunAll above continued from level 1, so re-mine fresh for the full
	// reference.
	ref, _ := AllFrequent(context.Background(), db, 2, nil, nil, nil)
	_ = want
	wantAll := flatten(ref)

	stats := &Stats{}
	lw, err := New(context.Background(), Config{DB: db, MinSupport: 2, PresetL1: preset, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	scansBefore := stats.DBScans // projection scan only
	lw.Step()
	if stats.DBScans != scansBefore {
		t.Errorf("preset level 1 performed a counting scan")
	}
	if stats.CandidatesCounted != 0 {
		t.Errorf("preset level 1 charged %d candidates", stats.CandidatesCounted)
	}
	got := map[string]int{}
	for _, c := range lw.FrequentItemCounts() {
		got[c.Set.Key()] = c.Support
	}
	for _, c := range preset {
		if got[c.Set.Key()] != c.Support {
			t.Errorf("preset support lost for %v", c.Set)
		}
	}
	// Finish mining: results must match a fresh full run.
	all := map[string]int{}
	for _, c := range lw.FrequentItemCounts() {
		all[c.Set.Key()] = c.Support
	}
	for !lw.Done() {
		sets, _, _ := lw.Step()
		for _, c := range sets {
			all[c.Set.Key()] = c.Support
		}
	}
	if !mapsEqual(all, wantAll) {
		t.Errorf("preset run diverged: %d sets vs %d", len(all), len(wantAll))
	}
}

// TestPresetL1Filtering: preset entries outside the domain are ignored and
// entries failing the candidate filter are dropped.
func TestPresetL1Filtering(t *testing.T) {
	db := txdb.New([]itemset.Set{itemset.New(1, 2, 3), itemset.New(1, 2, 3)})
	preset := []Counted{
		{Set: itemset.New(1), Support: 2},
		{Set: itemset.New(2), Support: 2},
		{Set: itemset.New(9), Support: 2},    // outside domain
		{Set: itemset.New(1, 2), Support: 2}, // not a singleton: ignored
	}
	lw, err := New(context.Background(), Config{
		DB: db, MinSupport: 2,
		Domain:   itemset.New(1, 2, 3),
		PresetL1: preset,
		CandidateFilter: func(_ int, s itemset.Set) bool {
			return !s.Contains(2) // drop item 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sets, _, _ := lw.Step()
	if len(sets) != 1 || !sets[0].Set.Equal(itemset.New(1)) {
		t.Errorf("level 1 = %v", sets)
	}
}
