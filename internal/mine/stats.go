package mine

import (
	"fmt"

	"repro/internal/obs"
)

// Stats accumulates the work counters behind the paper's ccc-optimality
// analysis (Section 6.2): how many candidate sets had their support counted,
// and how many times the constraint-checking operation was invoked — split
// into item-level checks (the |Item| checks a ccc-optimal strategy is
// allowed) and set-level checks (what generate-and-test strategies burn).
// DB scans are tracked on the txdb side; strategies snapshot them.
type Stats struct {
	// CandidatesCounted is the number of candidate sets whose support was
	// counted (the "counting" cost component of ccc-optimality).
	CandidatesCounted int64
	// CandidatesPruned is the number of candidates discarded after
	// generation — by a pushed constraint filter, a frequency test, report
	// filtering, final checks, or pair rejection. Subset-pruned candidates
	// (never materialized past generation) are not counted. Each pruned
	// candidate is also charged to exactly one obs.PruneSet site; the sum
	// over sites equals this total (asserted by tests).
	CandidatesPruned int64
	// ItemConstraintChecks counts constraint-checking invocations on
	// singleton sets (condition (2) of Definition 6 permits only these).
	ItemConstraintChecks int64
	// SetConstraintChecks counts constraint-checking invocations on sets of
	// size ≥ 2. A ccc-optimal strategy performs none during set computation.
	SetConstraintChecks int64
	// PairChecks counts 2-var constraint evaluations during final pair
	// formation (outside the scope of ccc-optimality, reported for
	// completeness).
	PairChecks int64
	// FrequentSets and ValidSets count discovered frequent sets and the
	// subset of them that are valid.
	FrequentSets int64
	ValidSets    int64
	// DBScans is the number of full transaction-database scans.
	DBScans int64
	// LatticeBytes estimates the memory allocated for lattice state
	// (candidates, per-level frequent sets, tid bitmaps, FP-tree nodes),
	// cumulatively over the run. Budgets bound it via
	// Budget.MaxLatticeBytes.
	LatticeBytes int64
	// Checkpoints counts cancellation/budget checkpoints passed — the
	// granularity at which a run can be interrupted (and at which
	// faultinject can target it).
	Checkpoints int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CandidatesCounted += other.CandidatesCounted
	s.CandidatesPruned += other.CandidatesPruned
	s.ItemConstraintChecks += other.ItemConstraintChecks
	s.SetConstraintChecks += other.SetConstraintChecks
	s.PairChecks += other.PairChecks
	s.FrequentSets += other.FrequentSets
	s.ValidSets += other.ValidSets
	s.DBScans += other.DBScans
	s.LatticeBytes += other.LatticeBytes
	s.Checkpoints += other.Checkpoints
}

// Minus returns the per-field difference s - prev: the work performed
// between two snapshots, which tracing attributes to one phase span.
func (s Stats) Minus(prev Stats) Stats {
	return Stats{
		CandidatesCounted:    s.CandidatesCounted - prev.CandidatesCounted,
		CandidatesPruned:     s.CandidatesPruned - prev.CandidatesPruned,
		ItemConstraintChecks: s.ItemConstraintChecks - prev.ItemConstraintChecks,
		SetConstraintChecks:  s.SetConstraintChecks - prev.SetConstraintChecks,
		PairChecks:           s.PairChecks - prev.PairChecks,
		FrequentSets:         s.FrequentSets - prev.FrequentSets,
		ValidSets:            s.ValidSets - prev.ValidSets,
		DBScans:              s.DBScans - prev.DBScans,
		LatticeBytes:         s.LatticeBytes - prev.LatticeBytes,
		Checkpoints:          s.Checkpoints - prev.Checkpoints,
	}
}

// Counters converts the stats into the obs span/metric counter form. The
// key names are the observability vocabulary: they appear in span deltas,
// RunReport totals and (suffixed with _total) the metrics registry, and
// IMPLEMENTATION_NOTES maps each to its paper cost component.
func (s Stats) Counters() obs.Counters {
	return obs.Counters{
		"candidates_counted":     s.CandidatesCounted,
		"candidates_pruned":      s.CandidatesPruned,
		"item_constraint_checks": s.ItemConstraintChecks,
		"set_constraint_checks":  s.SetConstraintChecks,
		"pair_checks":            s.PairChecks,
		"frequent_sets":          s.FrequentSets,
		"valid_sets":             s.ValidSets,
		"db_scans":               s.DBScans,
		"lattice_bytes":          s.LatticeBytes,
		"checkpoints":            s.Checkpoints,
	}
}

// FromCounters rebuilds a Stats from its counter form (the inverse of
// Counters; unknown keys are ignored, missing keys are zero).
func FromCounters(c obs.Counters) Stats {
	return Stats{
		CandidatesCounted:    c["candidates_counted"],
		CandidatesPruned:     c["candidates_pruned"],
		ItemConstraintChecks: c["item_constraint_checks"],
		SetConstraintChecks:  c["set_constraint_checks"],
		PairChecks:           c["pair_checks"],
		FrequentSets:         c["frequent_sets"],
		ValidSets:            c["valid_sets"],
		DBScans:              c["db_scans"],
		LatticeBytes:         c["lattice_bytes"],
		Checkpoints:          c["checkpoints"],
	}
}

// String renders the counters on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("counted=%d pruned=%d itemChecks=%d setChecks=%d pairChecks=%d frequent=%d valid=%d scans=%d latticeBytes=%d checkpoints=%d",
		s.CandidatesCounted, s.CandidatesPruned, s.ItemConstraintChecks, s.SetConstraintChecks, s.PairChecks,
		s.FrequentSets, s.ValidSets, s.DBScans, s.LatticeBytes, s.Checkpoints)
}
