package mine

import "fmt"

// Stats accumulates the work counters behind the paper's ccc-optimality
// analysis (Section 6.2): how many candidate sets had their support counted,
// and how many times the constraint-checking operation was invoked — split
// into item-level checks (the |Item| checks a ccc-optimal strategy is
// allowed) and set-level checks (what generate-and-test strategies burn).
// DB scans are tracked on the txdb side; strategies snapshot them.
type Stats struct {
	// CandidatesCounted is the number of candidate sets whose support was
	// counted (the "counting" cost component of ccc-optimality).
	CandidatesCounted int64
	// ItemConstraintChecks counts constraint-checking invocations on
	// singleton sets (condition (2) of Definition 6 permits only these).
	ItemConstraintChecks int64
	// SetConstraintChecks counts constraint-checking invocations on sets of
	// size ≥ 2. A ccc-optimal strategy performs none during set computation.
	SetConstraintChecks int64
	// PairChecks counts 2-var constraint evaluations during final pair
	// formation (outside the scope of ccc-optimality, reported for
	// completeness).
	PairChecks int64
	// FrequentSets and ValidSets count discovered frequent sets and the
	// subset of them that are valid.
	FrequentSets int64
	ValidSets    int64
	// DBScans is the number of full transaction-database scans.
	DBScans int64
	// LatticeBytes estimates the memory allocated for lattice state
	// (candidates, per-level frequent sets, tid bitmaps, FP-tree nodes),
	// cumulatively over the run. Budgets bound it via
	// Budget.MaxLatticeBytes.
	LatticeBytes int64
	// Checkpoints counts cancellation/budget checkpoints passed — the
	// granularity at which a run can be interrupted (and at which
	// faultinject can target it).
	Checkpoints int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CandidatesCounted += other.CandidatesCounted
	s.ItemConstraintChecks += other.ItemConstraintChecks
	s.SetConstraintChecks += other.SetConstraintChecks
	s.PairChecks += other.PairChecks
	s.FrequentSets += other.FrequentSets
	s.ValidSets += other.ValidSets
	s.DBScans += other.DBScans
	s.LatticeBytes += other.LatticeBytes
	s.Checkpoints += other.Checkpoints
}

// String renders the counters on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("counted=%d itemChecks=%d setChecks=%d pairChecks=%d frequent=%d valid=%d scans=%d latticeBytes=%d checkpoints=%d",
		s.CandidatesCounted, s.ItemConstraintChecks, s.SetConstraintChecks, s.PairChecks,
		s.FrequentSets, s.ValidSets, s.DBScans, s.LatticeBytes, s.Checkpoints)
}
