package mine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/txdb"
)

// benchDB builds a mid-size database with planted structure so the
// levelwise engine has real work at every level.
func benchDB(numTx int) *txdb.DB {
	r := rand.New(rand.NewSource(7))
	txs := make([]itemset.Set, numTx)
	for i := range txs {
		items := make([]itemset.Item, 0, 12)
		// A hot clique in a third of the baskets plus random tail items.
		if i%3 == 0 {
			for j := 0; j < 6; j++ {
				if r.Intn(4) != 0 {
					items = append(items, itemset.Item(j))
				}
			}
		}
		for j := 0; j < 6; j++ {
			items = append(items, itemset.Item(6+r.Intn(194)))
		}
		txs[i] = itemset.New(items...)
	}
	return txdb.New(txs)
}

func BenchmarkLevelwiseEndToEnd(b *testing.B) {
	db := benchDB(5000)
	minSup := db.Len() / 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllFrequent(context.Background(), db, minSup, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrieCounting(b *testing.B) {
	db := benchDB(5000)
	minSup := db.Len() / 50
	// Mine once to reach level 2 state, then measure repeated level steps
	// indirectly by full re-runs with preset level 1 (isolates generation
	// plus counting beyond level 1).
	lw, err := New(context.Background(), Config{DB: db, MinSupport: minSup})
	if err != nil {
		b.Fatal(err)
	}
	lw.Step()
	preset := lw.FrequentItemCounts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lw2, err := New(context.Background(), Config{DB: db, MinSupport: minSup, PresetL1: preset})
		if err != nil {
			b.Fatal(err)
		}
		lw2.RunAll()
	}
}

func BenchmarkVerticalEndToEnd(b *testing.B) {
	db := benchDB(5000)
	minSup := db.Len() / 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerticalFrequent(context.Background(), db, minSup, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxFrequent(b *testing.B) {
	db := benchDB(5000)
	minSup := db.Len() / 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxFrequent(context.Background(), db, minSup, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelCounting(b *testing.B) {
	db := benchDB(20000)
	minSup := db.Len() / 50
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "serial", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lw, err := New(context.Background(), Config{DB: db, MinSupport: minSup, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				lw.RunAll()
			}
		})
	}
}

// BenchmarkFPGrowth measures the pattern-growth miner end to end on the
// same workload as the levelwise benchmark.
func BenchmarkFPGrowth(b *testing.B) {
	db := benchDB(5000)
	minSup := db.Len() / 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPGrowth(context.Background(), db, minSup, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracingOverhead compares a run with no tracer in the context
// (the default: every instrumentation point is one nil comparison)
// against a run recording spans. "disabled" vs the plain levelwise
// benchmark is the regression gate the ISSUE requires.
func BenchmarkTracingOverhead(b *testing.B) {
	db := benchDB(5000)
	minSup := db.Len() / 50
	b.Run("disabled", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := AllFrequent(ctx, db, minSup, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tracer := obs.NewTracer(obs.Options{Name: "bench"})
			ctx := obs.WithTracer(context.Background(), tracer)
			if _, err := AllFrequent(ctx, db, minSup, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
