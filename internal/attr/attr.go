// Package attr implements the itemInfo(Item, Type, Price, …) auxiliary
// relation of the paper: per-item attribute tables with numeric attributes
// (e.g. Price) and categorical attributes (e.g. Type), plus the aggregate
// evaluators (min, max, sum, avg, count) and value-set projections that the
// constraint language is defined over.
package attr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/itemset"
)

// Aggregate identifies one of the SQL-style aggregation functions of the
// CFQ language.
type Aggregate int

// The aggregation functions allowed in CFQ constraints.
const (
	Min Aggregate = iota
	Max
	Sum
	Avg
	Count
)

// String returns the lower-case name of the aggregate, matching the paper's
// notation (min(), max(), sum(), avg(), count()).
func (a Aggregate) String() string {
	switch a {
	case Min:
		return "min"
	case Max:
		return "max"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Count:
		return "count"
	}
	return fmt.Sprintf("Aggregate(%d)", int(a))
}

// Numeric is a numeric item attribute, indexed by item id. Items beyond the
// slice are treated as having no attribute and are rejected by the engine's
// validation rather than defaulted.
type Numeric []float64

// Value returns the attribute value of item it. It panics on out-of-range
// items; the engine validates domains before mining.
func (n Numeric) Value(it itemset.Item) float64 { return n[it] }

// Eval computes agg over the attribute values of s. Min/Max/Avg on the empty
// set are undefined; Eval returns ok=false for them (Sum of ∅ is 0 and
// Count of ∅ is 0, both defined).
func (n Numeric) Eval(agg Aggregate, s itemset.Set) (v float64, ok bool) {
	switch agg {
	case Count:
		return float64(s.Len()), true
	case Sum:
		sum := 0.0
		for _, it := range s {
			sum += n[it]
		}
		return sum, true
	}
	if s.Empty() {
		return 0, false
	}
	switch agg {
	case Min:
		m := math.Inf(1)
		for _, it := range s {
			m = math.Min(m, n[it])
		}
		return m, true
	case Max:
		m := math.Inf(-1)
		for _, it := range s {
			m = math.Max(m, n[it])
		}
		return m, true
	case Avg:
		sum := 0.0
		for _, it := range s {
			sum += n[it]
		}
		return sum / float64(s.Len()), true
	}
	panic(fmt.Sprintf("attr: unknown aggregate %v", agg))
}

// NonNegativeOver reports whether the attribute is non-negative on every
// item of the domain. The sum/avg weakening rules of the paper (Section 5.1)
// are only sound for non-negative domains; the engine consults this before
// enabling them.
func (n Numeric) NonNegativeOver(domain itemset.Set) bool {
	for _, it := range domain {
		if n[it] < 0 {
			return false
		}
	}
	return true
}

// ValuesOver returns the sorted distinct attribute values over the items of
// domain (the set L1.A of the paper, when domain is the frequent items).
func (n Numeric) ValuesOver(domain itemset.Set) []float64 {
	vals := make([]float64, 0, domain.Len())
	for _, it := range domain {
		vals = append(vals, n[it])
	}
	sort.Float64s(vals)
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Categorical is a categorical item attribute: Values maps item id to a
// category id; Labels names each category.
type Categorical struct {
	Values []int32
	Labels []string
}

// Value returns the category id of item it.
func (c *Categorical) Value(it itemset.Item) int32 { return c.Values[it] }

// Label returns the name of category id v, or "cat<v>" when unnamed.
func (c *Categorical) Label(v int32) string {
	if int(v) < len(c.Labels) {
		return c.Labels[v]
	}
	return fmt.Sprintf("cat%d", v)
}

// CategoryID returns the id for a label, or -1 when the label is unknown.
func (c *Categorical) CategoryID(label string) int32 {
	for i, l := range c.Labels {
		if l == label {
			return int32(i)
		}
	}
	return -1
}

// SetOf projects s through the attribute: the set S.A of the paper, as a
// sorted set of category ids.
func (c *Categorical) SetOf(s itemset.Set) ValueSet {
	vals := make([]int32, 0, s.Len())
	for _, it := range s {
		vals = append(vals, c.Values[it])
	}
	return NewValueSet(vals...)
}

// DistinctCount returns |S.A|: the number of distinct category values in s.
// It implements the paper's count(S.Type) constraint form.
func (c *Categorical) DistinctCount(s itemset.Set) int { return c.SetOf(s).Len() }

// ValueSet is a sorted set of categorical values, the codomain of S.A for a
// categorical attribute A. It mirrors the itemset.Set algebra.
type ValueSet []int32

// NewValueSet builds a ValueSet from arbitrary values.
func NewValueSet(vals ...int32) ValueSet {
	v := make(ValueSet, len(vals))
	copy(v, vals)
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Len returns the cardinality of the value set.
func (v ValueSet) Len() int { return len(v) }

// Contains reports membership of x.
func (v ValueSet) Contains(x int32) bool {
	i := sort.Search(len(v), func(i int) bool { return v[i] >= x })
	return i < len(v) && v[i] == x
}

// ContainsAll reports sub ⊆ v.
func (v ValueSet) ContainsAll(sub ValueSet) bool {
	i := 0
	for _, x := range sub {
		for i < len(v) && v[i] < x {
			i++
		}
		if i >= len(v) || v[i] != x {
			return false
		}
		i++
	}
	return true
}

// Intersects reports v ∩ u ≠ ∅.
func (v ValueSet) Intersects(u ValueSet) bool {
	i, j := 0, 0
	for i < len(v) && j < len(u) {
		switch {
		case v[i] < u[j]:
			i++
		case v[i] > u[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Equal reports element-wise equality.
func (v ValueSet) Equal(u ValueSet) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// Table is the itemInfo relation: named numeric and categorical attributes
// over a fixed item domain of size NumItems. The zero value is unusable;
// construct with NewTable.
type Table struct {
	NumItems    int
	numeric     map[string]Numeric
	categorical map[string]*Categorical
}

// NewTable creates an empty attribute table for an item domain of the given
// size.
func NewTable(numItems int) *Table {
	return &Table{
		NumItems:    numItems,
		numeric:     map[string]Numeric{},
		categorical: map[string]*Categorical{},
	}
}

// SetNumeric registers a numeric attribute. The value slice must cover the
// whole item domain.
func (t *Table) SetNumeric(name string, values []float64) error {
	if len(values) != t.NumItems {
		return fmt.Errorf("attr: numeric %q has %d values, domain has %d items", name, len(values), t.NumItems)
	}
	t.numeric[name] = Numeric(values)
	return nil
}

// SetCategorical registers a categorical attribute. The value slice must
// cover the whole item domain and reference only labels in range.
func (t *Table) SetCategorical(name string, values []int32, labels []string) error {
	if len(values) != t.NumItems {
		return fmt.Errorf("attr: categorical %q has %d values, domain has %d items", name, len(values), t.NumItems)
	}
	for i, v := range values {
		if v < 0 || int(v) >= len(labels) {
			return fmt.Errorf("attr: categorical %q: item %d has out-of-range category %d", name, i, v)
		}
	}
	t.categorical[name] = &Categorical{Values: values, Labels: labels}
	return nil
}

// Numeric looks up a numeric attribute by name.
func (t *Table) Numeric(name string) (Numeric, bool) {
	n, ok := t.numeric[name]
	return n, ok
}

// Categorical looks up a categorical attribute by name.
func (t *Table) Categorical(name string) (*Categorical, bool) {
	c, ok := t.categorical[name]
	return c, ok
}

// NumericNames returns the registered numeric attribute names, sorted.
func (t *Table) NumericNames() []string {
	names := make([]string, 0, len(t.numeric))
	for n := range t.numeric {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CategoricalNames returns the registered categorical attribute names,
// sorted.
func (t *Table) CategoricalNames() []string {
	names := make([]string, 0, len(t.categorical))
	for n := range t.categorical {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
