package attr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
)

func TestAggregateString(t *testing.T) {
	tests := []struct {
		a    Aggregate
		want string
	}{
		{Min, "min"}, {Max, "max"}, {Sum, "sum"}, {Avg, "avg"}, {Count, "count"},
		{Aggregate(99), "Aggregate(99)"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.a), got, tt.want)
		}
	}
}

func TestNumericEval(t *testing.T) {
	n := Numeric{10, 20, 30, 5}
	s := itemset.New(0, 2, 3)
	tests := []struct {
		agg    Aggregate
		want   float64
		wantOK bool
	}{
		{Min, 5, true},
		{Max, 30, true},
		{Sum, 45, true},
		{Avg, 15, true},
		{Count, 3, true},
	}
	for _, tt := range tests {
		got, ok := n.Eval(tt.agg, s)
		if ok != tt.wantOK || math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, %v; want %v, %v", tt.agg, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestNumericEvalEmptySet(t *testing.T) {
	n := Numeric{1, 2}
	empty := itemset.New()
	for _, agg := range []Aggregate{Min, Max, Avg} {
		if _, ok := n.Eval(agg, empty); ok {
			t.Errorf("Eval(%v, ∅) ok = true, want false", agg)
		}
	}
	if v, ok := n.Eval(Sum, empty); !ok || v != 0 {
		t.Errorf("Eval(sum, ∅) = %v, %v; want 0, true", v, ok)
	}
	if v, ok := n.Eval(Count, empty); !ok || v != 0 {
		t.Errorf("Eval(count, ∅) = %v, %v; want 0, true", v, ok)
	}
}

func TestNonNegativeOver(t *testing.T) {
	n := Numeric{1, -2, 3}
	if !n.NonNegativeOver(itemset.New(0, 2)) {
		t.Error("NonNegativeOver({0,2}) = false")
	}
	if n.NonNegativeOver(itemset.New(0, 1, 2)) {
		t.Error("NonNegativeOver({0,1,2}) = true")
	}
}

func TestValuesOver(t *testing.T) {
	n := Numeric{5, 3, 5, 1}
	got := n.ValuesOver(itemset.New(0, 1, 2, 3))
	want := []float64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("ValuesOver = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ValuesOver = %v, want %v", got, want)
		}
	}
}

func TestCategorical(t *testing.T) {
	c := &Categorical{Values: []int32{0, 1, 0, 2}, Labels: []string{"snacks", "beer", "dairy"}}
	if c.Value(1) != 1 {
		t.Errorf("Value(1) = %d", c.Value(1))
	}
	if c.Label(2) != "dairy" {
		t.Errorf("Label(2) = %q", c.Label(2))
	}
	if c.Label(9) != "cat9" {
		t.Errorf("Label(9) = %q", c.Label(9))
	}
	if c.CategoryID("beer") != 1 {
		t.Errorf("CategoryID(beer) = %d", c.CategoryID("beer"))
	}
	if c.CategoryID("wine") != -1 {
		t.Errorf("CategoryID(wine) = %d", c.CategoryID("wine"))
	}
	if got := c.SetOf(itemset.New(0, 2, 3)); !got.Equal(NewValueSet(0, 2)) {
		t.Errorf("SetOf = %v", got)
	}
	if got := c.DistinctCount(itemset.New(0, 1, 2)); got != 2 {
		t.Errorf("DistinctCount = %d, want 2", got)
	}
}

func TestValueSetOps(t *testing.T) {
	v := NewValueSet(3, 1, 3, 2)
	if !v.Equal(NewValueSet(1, 2, 3)) {
		t.Fatalf("NewValueSet = %v", v)
	}
	if !v.Contains(2) || v.Contains(4) {
		t.Error("Contains wrong")
	}
	if !v.ContainsAll(NewValueSet(1, 3)) || v.ContainsAll(NewValueSet(1, 4)) {
		t.Error("ContainsAll wrong")
	}
	if !v.Intersects(NewValueSet(0, 3)) || v.Intersects(NewValueSet(0, 9)) {
		t.Error("Intersects wrong")
	}
	if v.Equal(NewValueSet(1, 2)) {
		t.Error("Equal on different lengths")
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable(3)
	if err := tbl.SetNumeric("Price", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetNumeric("Price", []float64{1}); err == nil {
		t.Error("short numeric accepted")
	}
	if err := tbl.SetCategorical("Type", []int32{0, 1, 0}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetCategorical("Bad", []int32{0, 5, 0}, []string{"a"}); err == nil {
		t.Error("out-of-range category accepted")
	}
	if err := tbl.SetCategorical("Bad2", []int32{0}, []string{"a"}); err == nil {
		t.Error("short categorical accepted")
	}
	if _, ok := tbl.Numeric("Price"); !ok {
		t.Error("Numeric(Price) missing")
	}
	if _, ok := tbl.Numeric("Nope"); ok {
		t.Error("Numeric(Nope) found")
	}
	if _, ok := tbl.Categorical("Type"); !ok {
		t.Error("Categorical(Type) missing")
	}
	if got := tbl.NumericNames(); len(got) != 1 || got[0] != "Price" {
		t.Errorf("NumericNames = %v", got)
	}
	if got := tbl.CategoricalNames(); len(got) != 1 || got[0] != "Type" {
		t.Errorf("CategoricalNames = %v", got)
	}
}

// Property: aggregate identities — min ≤ avg ≤ max, sum = avg·count, and
// for non-negative attributes max ≤ sum. These are exactly the inequalities
// the paper's induced-weaker-constraint rules (Section 5.1) rely on.
func TestQuickAggregateInequalities(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := make(Numeric, 12)
		for i := range n {
			n[i] = float64(r.Intn(1000)) // non-negative
		}
		m := 1 + r.Intn(6)
		items := make([]itemset.Item, m)
		for i := range items {
			items[i] = itemset.Item(r.Intn(12))
		}
		s := itemset.New(items...)
		mn, _ := n.Eval(Min, s)
		mx, _ := n.Eval(Max, s)
		av, _ := n.Eval(Avg, s)
		su, _ := n.Eval(Sum, s)
		ct, _ := n.Eval(Count, s)
		const eps = 1e-9
		return mn <= av+eps && av <= mx+eps && mx <= su+eps &&
			math.Abs(su-av*ct) < 1e-6 && ct == float64(s.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
