package jmax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/itemset"
	"repro/internal/txdb"
)

// TestPaperNumericalExample reproduces the worked example of Section 5.2:
// 17 frequent sets of size 4 containing t1 cap the largest frequent set
// containing t1 at size 6 (J = 2), because a size-7 set would need
// C(6,3) = 20 such sets.
func TestPaperNumericalExample(t *testing.T) {
	if got := itemset.Binomial(6, 3); got != 20 {
		t.Fatalf("C(6,3) = %d", got)
	}
	// Build 17 distinct 4-sets all containing item 0, over items 1..20.
	num := make(attr.Numeric, 25)
	var sets []itemset.Set
	next := itemset.Item(1)
	for len(sets) < 17 {
		s := itemset.New(0, next, next+1, next+2)
		sets = append(sets, s)
		next++
	}
	sum, err := Summarize(sets, 4, num)
	if err != nil {
		t.Fatal(err)
	}
	// Item 0 has N = 17: J_0 = 2 (17 >= C(4,3)=4 and 17 >= C(5,3)=10, but
	// 17 < C(6,3)=20). Other items appear at most 3 times: 3 < C(4,3)=4 →
	// J = 0. So Jmax = 2 and the size bound is 6.
	if sum.Jmax != 2 {
		t.Errorf("Jmax = %d, want 2", sum.Jmax)
	}
	if sum.SizeBound() != 6 {
		t.Errorf("SizeBound = %d, want 6", sum.SizeBound())
	}
}

// TestMaxSumExample verifies the Figure-6 computation on a hand-worked
// example (values chosen so every intermediate quantity is checkable).
func TestMaxSumExample(t *testing.T) {
	// Items 1..4 with B-values 10, 20, 30, 40; frequent 2-sets below.
	num := attr.Numeric{0, 10, 20, 30, 40}
	sets := []itemset.Set{
		itemset.New(1, 2), // 30
		itemset.New(1, 3), // 40
		itemset.New(2, 3), // 50
		itemset.New(3, 4), // 70
	}
	sum, err := Summarize(sets, 2, num)
	if err != nil {
		t.Fatal(err)
	}
	// N = {1:2, 2:2, 3:3, 4:1}; with k=2, J_i = N_i - 1, so Jmax = 2 and
	// the largest frequent set has at most 4 elements.
	if sum.Jmax != 2 {
		t.Fatalf("Jmax = %d, want 2", sum.Jmax)
	}
	if sum.SizeBound() != 4 {
		t.Errorf("SizeBound = %d, want 4", sum.SizeBound())
	}
	// MaxSum per element: 1: 40+30+20=90; 2: 50+30+10=90;
	// 3: 70+40+20=130; 4: 70+30=100 (only one co-occurring element).
	// V = 130; exact level max = 70.
	if sum.V != 130 {
		t.Errorf("V = %v, want 130", sum.V)
	}
	if sum.MaxExact != 70 {
		t.Errorf("MaxExact = %v, want 70", sum.MaxExact)
	}
}

func TestSummarizeValidation(t *testing.T) {
	num := make(attr.Numeric, 5)
	if _, err := Summarize(nil, 0, num); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Summarize([]itemset.Set{itemset.New(1, 2)}, 3, num); err == nil {
		t.Error("wrong-size set accepted")
	}
	s, err := Summarize(nil, 3, num)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jmax != 0 || !math.IsInf(s.V, -1) {
		t.Errorf("empty level: %+v", s)
	}
	// k = 1: no combinatorial information.
	s, err = Summarize([]itemset.Set{itemset.New(2)}, 1, attr.Numeric{0, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Jmax != Unbounded || s.SizeBound() != Unbounded || !math.IsInf(s.V, 1) {
		t.Errorf("k=1 summary: %+v", s)
	}
	if s.MaxExact != 7 {
		t.Errorf("k=1 MaxExact = %v", s.MaxExact)
	}
}

// frequentLevels enumerates the frequent sets of a tiny database grouped by
// size (brute-force oracle).
func frequentLevels(db *txdb.DB, minSup int) [][]itemset.Set {
	domain := db.ActiveItems()
	byLen := map[int][]itemset.Set{}
	maxLen := 0
	domain.ForEachSubset(func(s itemset.Set) bool {
		if db.Support(s) >= minSup {
			byLen[s.Len()] = append(byLen[s.Len()], s.Clone())
			if s.Len() > maxLen {
				maxLen = s.Len()
			}
		}
		return true
	})
	out := make([][]itemset.Set, maxLen)
	for l := 1; l <= maxLen; l++ {
		out[l-1] = byLen[l]
	}
	return out
}

// TestQuickSoundness is the central property test: on random databases,
// the size bound must dominate the true largest frequent set and Vᵏ must
// dominate the true maximum sum over frequent sets of size ≥ k — and the
// Series combination must bound every frequent set's sum.
func TestQuickSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numItems := 7
		txs := make([]itemset.Set, 15+r.Intn(25))
		for i := range txs {
			m := 1 + r.Intn(5)
			items := make([]itemset.Item, m)
			for j := range items {
				items[j] = itemset.Item(r.Intn(numItems))
			}
			txs[i] = itemset.New(items...)
		}
		db := txdb.New(txs)
		num := make(attr.Numeric, numItems)
		for i := range num {
			num[i] = float64(r.Intn(100))
		}
		minSup := 1 + r.Intn(3)
		levels := frequentLevels(db, minSup)
		if len(levels) == 0 {
			return true
		}
		largest := len(levels)
		series := NewSeries()
		for k := 1; k <= len(levels); k++ {
			sum, err := Summarize(levels[k-1], k, num)
			if err != nil {
				t.Log(err)
				return false
			}
			// Size bound soundness.
			if sum.SizeBound() < largest {
				t.Logf("seed %d: level %d size bound %d < true largest %d",
					seed, k, sum.SizeBound(), largest)
				return false
			}
			// V soundness: max sum over frequent sets of size >= k.
			trueMax := math.Inf(-1)
			for kk := k; kk <= len(levels); kk++ {
				for _, s := range levels[kk-1] {
					v, _ := num.Eval(attr.Sum, s)
					if v > trueMax {
						trueMax = v
					}
				}
			}
			if sum.V < trueMax-1e-9 {
				t.Logf("seed %d: level %d V = %v < true max %v", seed, k, sum.V, trueMax)
				return false
			}
			series.Observe(sum)
			// After observing levels 1..k the series bound must dominate
			// every frequent set's sum (any size).
			globalMax := math.Inf(-1)
			for kk := 1; kk <= len(levels); kk++ {
				for _, s := range levels[kk-1] {
					v, _ := num.Eval(attr.Sum, s)
					if v > globalMax {
						globalMax = v
					}
				}
			}
			if series.Bound() < globalMax-1e-9 {
				t.Logf("seed %d: series bound %v < global max %v after level %d",
					seed, series.Bound(), globalMax, k)
				return false
			}
			if series.SizeBound() < largest {
				t.Logf("seed %d: series size bound %d < largest %d", seed, series.SizeBound(), largest)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSeriesTightensMonotonically asserts Lemma 7's practical consequence:
// the series bound never increases as more levels are observed.
func TestSeriesTightensMonotonically(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numItems := 7
		txs := make([]itemset.Set, 20+r.Intn(20))
		for i := range txs {
			m := 1 + r.Intn(5)
			items := make([]itemset.Item, m)
			for j := range items {
				items[j] = itemset.Item(r.Intn(numItems))
			}
			txs[i] = itemset.New(items...)
		}
		db := txdb.New(txs)
		num := make(attr.Numeric, numItems)
		for i := range num {
			num[i] = float64(r.Intn(50))
		}
		levels := frequentLevels(db, 2)
		series := NewSeries()
		prevSize := series.SizeBound()
		// Skip level 1 (uninformative) as the engine does.
		for k := 2; k <= len(levels); k++ {
			sum, err := Summarize(levels[k-1], k, num)
			if err != nil {
				return false
			}
			series.Observe(sum)
			if series.SizeBound() > prevSize {
				return false
			}
			prevSize = series.SizeBound()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNegativeValuesStaySound(t *testing.T) {
	num := attr.Numeric{-10, 5, 3, -2, 8}
	sets := []itemset.Set{
		itemset.New(0, 1), itemset.New(1, 2), itemset.New(2, 4),
		itemset.New(1, 4), itemset.New(0, 4),
	}
	sum, err := Summarize(sets, 2, num)
	if err != nil {
		t.Fatal(err)
	}
	// The bound must dominate the max pair sum (13 for {1,4}... {2,4}=11,
	// {1,4}=13) even though negative values are in play.
	if sum.V < 13 {
		t.Errorf("V = %v < 13", sum.V)
	}
	if sum.MaxExact != 13 {
		t.Errorf("MaxExact = %v, want 13", sum.MaxExact)
	}
}

func TestSeriesBeforeObservation(t *testing.T) {
	s := NewSeries()
	if !math.IsInf(s.Bound(), 1) {
		t.Errorf("fresh series bound = %v", s.Bound())
	}
	if s.SizeBound() != Unbounded {
		t.Errorf("fresh series size bound = %d", s.SizeBound())
	}
}

// TestAttrs: the span-annotation rendering reports finite bounds only.
func TestAttrs(t *testing.T) {
	s := NewSeries()
	if got := s.Attrs("b0_"); got != nil {
		t.Errorf("uninitialized series rendered attrs: %v", got)
	}
	s.Observe(&Summary{K: 2, Jmax: 1, V: 42, MaxExact: 30})
	attrs := map[string]any{}
	for _, a := range s.Attrs("b0_") {
		attrs[a.Key] = a.Value
	}
	if attrs["b0_sum_bound"] != 42.0 || attrs["b0_size_bound"] != 3 {
		t.Errorf("series attrs = %v", attrs)
	}

	sum := &Summary{K: 2, Jmax: Unbounded, V: math.Inf(1)}
	attrs = map[string]any{}
	for _, a := range sum.Attrs("") {
		attrs[a.Key] = a.Value
	}
	if attrs["k"] != 2 {
		t.Errorf("summary attrs = %v", attrs)
	}
	if _, ok := attrs["jmax"]; ok {
		t.Error("unbounded jmax rendered")
	}
	if _, ok := attrs["v"]; ok {
		t.Error("infinite v rendered")
	}
}
