// Package jmax implements the iterative pruning machinery of Section 5.2:
// from the complete collection of frequent sets of some size k it derives
//
//   - Jmaxᵏ (Figure 5): an upper bound on how many elements any frequent
//     set can have beyond k, obtained from the combinatorial fact that an
//     element of a frequent (k+j)-set must appear in at least
//     C(k+j-1, k-1) frequent k-sets;
//   - Vᵏ (Figure 6): an upper bound on sum(T.B) over every frequent T-set
//     of size ≥ k, combining each element's best k-set with the top
//     co-occurring attribute values it could still absorb.
//
// The Vᵏ series drives the evolving pruning condition sum(S.A) <= Vᵏ on
// the dovetailed opposite lattice (and the analogous Aᵏ series for avg).
//
// One deliberate deviation from the paper's Figure 6, documented in
// DESIGN.md §3.3: the top-Jmax values are taken over *all* elements
// co-occurring with tᵢ rather than only those outside tᵢ's best k-set
// (E_iᵏ). An arbitrary frequent superset's extra elements are outside its
// *own* best k-subset, which need not avoid T_iᵏ, so the paper's narrower
// pool can under-bound; the wider pool is always sound and coincides with
// the paper's value in the common case.
package jmax

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/attr"
	"repro/internal/itemset"
	"repro/internal/obs"
)

// Unbounded is returned as the Jmax value when no finite bound can be
// derived (level k < 2, or an element whose membership count satisfies
// every binomial test we probe).
const Unbounded = math.MaxInt32

// Summary captures the iterative-pruning quantities derived from the
// frequent sets of one level.
type Summary struct {
	// K is the level the summary was computed from.
	K int
	// Jmax is Figure 5's bound: no frequent set exceeds K+Jmax elements.
	// Unbounded when no finite bound exists.
	Jmax int
	// V is Figure 6's bound on sum(X.B) over frequent sets of size ≥ K
	// (for the attribute passed to Summarize). +Inf when unbounded.
	V float64
	// MaxExact is the exact maximum attribute sum among the level's own
	// sets (callers combine it across levels to bound smaller sets too).
	MaxExact float64
}

// SizeBound returns the derived bound on the largest frequent set's
// cardinality, or Unbounded.
func (s *Summary) SizeBound() int {
	if s.Jmax >= Unbounded-s.K {
		return Unbounded
	}
	return s.K + s.Jmax
}

// Summarize computes the level summary from all frequent sets of size k
// (every set must have exactly k elements) and the attribute to bound sums
// of. It errors on malformed input; an empty set list yields Jmax = 0 and
// V = -Inf (no frequent set of size ≥ k exists at all).
func Summarize(sets []itemset.Set, k int, num attr.Numeric) (*Summary, error) {
	if k < 1 {
		return nil, fmt.Errorf("jmax: level k = %d < 1", k)
	}
	for i, s := range sets {
		if s.Len() != k {
			return nil, fmt.Errorf("jmax: set %d has %d elements, want %d", i, s.Len(), k)
		}
	}
	if len(sets) == 0 {
		return &Summary{K: k, Jmax: 0, V: math.Inf(-1), MaxExact: math.Inf(-1)}, nil
	}
	if k < 2 {
		// Figure 5 needs k >= 2: with k = 1 the binomial test is vacuous.
		v := math.Inf(-1)
		for _, s := range sets {
			if sum, _ := num.Eval(attr.Sum, s); sum > v {
				v = sum
			}
		}
		return &Summary{K: k, Jmax: Unbounded, V: math.Inf(1), MaxExact: v}, nil
	}

	// Per-element membership counts N_iᵏ and co-occurrence sets.
	counts := map[itemset.Item]int{}
	cooccur := map[itemset.Item]map[itemset.Item]bool{}
	bestSum := map[itemset.Item]float64{} // Sum_iᵏ
	maxExact := math.Inf(-1)
	for _, s := range sets {
		sum, _ := num.Eval(attr.Sum, s)
		if sum > maxExact {
			maxExact = sum
		}
		for _, ti := range s {
			counts[ti]++
			if counts[ti] == 1 || sum > bestSum[ti] {
				bestSum[ti] = sum
			}
			co := cooccur[ti]
			if co == nil {
				co = map[itemset.Item]bool{}
				cooccur[ti] = co
			}
			for _, e := range s {
				if e != ti {
					co[e] = true
				}
			}
		}
	}

	// J_iᵏ: the largest j with N_iᵏ >= C(k+j-1, k-1)  (Equation 1).
	jmaxAll := 0
	for _, n := range counts {
		j := 0
		for {
			need := itemset.Binomial(k+j, k-1) // test for j+1
			if int64(n) >= need && j < Unbounded {
				j++
			} else {
				break
			}
		}
		if j > jmaxAll {
			jmaxAll = j
		}
	}

	// MaxSum_iᵏ: best k-set plus the top-Jmax co-occurring values
	// (non-negative values only — adding negative values would unsoundly
	// lower the bound when fewer than Jmax extras exist).
	v := math.Inf(-1)
	for ti, co := range cooccur {
		vals := make([]float64, 0, len(co))
		for e := range co {
			vals = append(vals, num[e])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		ms := bestSum[ti]
		for u := 0; u < jmaxAll && u < len(vals) && vals[u] > 0; u++ {
			ms += vals[u]
		}
		if ms > v {
			v = ms
		}
	}
	return &Summary{K: k, Jmax: jmaxAll, V: v, MaxExact: maxExact}, nil
}

// Series maintains the monotone bound state the dovetailed engine consults:
// the tightest Vᵏ seen so far combined with the exact per-level maxima
// (Lemma 7's non-increasing series, enforced by construction), and the
// tightest size bound.
type Series struct {
	initialized bool
	exactMax    float64 // max sum among frequent sets of completed levels
	vTail       float64 // tightest bound on sums of deeper (uncounted) sets
	sizeBound   int
	history     []SeriesStep
}

// SeriesStep records the series state after one observed level — the raw
// material for EXPLAIN ANALYZE's per-iteration bound trajectory.
type SeriesStep struct {
	// K is the observed level.
	K int
	// Bound is Series.Bound() after folding the level in (+Inf when still
	// unbounded).
	Bound float64
	// SizeBound is Series.SizeBound() after folding the level in
	// (Unbounded when none).
	SizeBound int
}

// NewSeries returns a Series with no information: Bound() = +Inf.
func NewSeries() *Series {
	return &Series{vTail: math.Inf(1), exactMax: math.Inf(-1), sizeBound: Unbounded}
}

// Observe folds in one completed level's summary.
func (s *Series) Observe(sum *Summary) {
	s.initialized = true
	if sum.MaxExact > s.exactMax {
		s.exactMax = sum.MaxExact
	}
	if sum.V < s.vTail {
		s.vTail = sum.V
	}
	if sb := sum.SizeBound(); sb < s.sizeBound {
		s.sizeBound = sb
	}
	s.history = append(s.history, SeriesStep{K: sum.K, Bound: s.Bound(), SizeBound: s.sizeBound})
}

// History returns the per-level bound trajectory, in observation order. The
// slice is owned by the series; callers must not mutate it.
func (s *Series) History() []SeriesStep { return s.history }

// Finish records that every level of the lattice has been observed: no
// deeper frequent sets exist, so the exact per-level maxima alone bound all
// sums and the Vᵏ tail is discarded.
func (s *Series) Finish() {
	if s.initialized {
		s.vTail = math.Inf(-1)
	}
}

// Bound returns the current sound upper bound on sum(X.B) over every
// frequent set of the observed lattice: the exact maximum among completed
// levels, or the Vᵏ tail bound for sets deeper than any completed level,
// whichever is larger. +Inf before any observation.
func (s *Series) Bound() float64 {
	if !s.initialized {
		return math.Inf(1)
	}
	return math.Max(s.exactMax, s.vTail)
}

// SizeBound returns the tightest derived cardinality bound (Unbounded if
// none).
func (s *Series) SizeBound() int { return s.sizeBound }

// Attrs renders the series' current state as span annotations (prefixed, so
// one span can carry several bounds). Infinite / unbounded components are
// omitted: a span attribute should state information, not its absence.
func (s *Series) Attrs(prefix string) []obs.Attr {
	if !s.initialized {
		return nil
	}
	var out []obs.Attr
	if b := s.Bound(); !math.IsInf(b, 0) {
		out = append(out, obs.Float(prefix+"sum_bound", b))
	}
	if s.sizeBound < Unbounded {
		out = append(out, obs.Int(prefix+"size_bound", s.sizeBound))
	}
	return out
}

// Attrs renders one level summary as span annotations (Figure 5's Jmax and
// Figure 6's V for the level), prefixed like Series.Attrs.
func (s *Summary) Attrs(prefix string) []obs.Attr {
	out := []obs.Attr{obs.Int(prefix+"k", s.K)}
	if s.Jmax < Unbounded {
		out = append(out, obs.Int(prefix+"jmax", s.Jmax))
	}
	if !math.IsInf(s.V, 0) {
		out = append(out, obs.Float(prefix+"v", s.V))
	}
	return out
}
