// Package plan is the cost-based query planner: given a query's feature
// vector (internal/core/estimate.go via core.BuildExplainFeatures) it
// chooses an evaluation strategy, whether to run the Jmax iterative
// pruning loop (and a cutoff for it), and which complete-mining engine to
// use — producing an executable decision rather than a description.
//
// The static model prices each strategy with terms that mirror the paper's
// pruning arguments:
//
//   - lattice breadth: the expected valid L1 frontier per side
//     (frequent items × 1-var selectivity) — CAP's pushdown benefit;
//   - quasi-succinct reduction (Section 4): each quasi-succinct 2-var
//     constraint shrinks both frontiers by a constant factor after one
//     counting iteration;
//   - induced weakening + Jmax (Section 5): non-quasi-succinct 2-var
//     constraints prune only through dynamic bounds, which the dovetailed
//     strategy tightens mid-flight (shrink on both sides, minus a
//     per-iteration summarization overhead) and the sequential strategy
//     resolves exactly but late (maximal S-side shrink, no T-side shrink);
//   - pair formation: 2-var constraints not pushed into the lattices are
//     paid for at the S×T cross product — the dominant term for the
//     no-reduction baselines.
//
// Costs are unitless; only their order matters. An online feedback loop
// (Fold) corrects mispredictions per query class from the workload
// journal's shadow-sampled regret table, and a fallback path guarantees a
// decision — the configured default strategy — whenever features are
// missing or degenerate.
package plan

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/workload"
)

// SchemaVersion versions the Decision wire shape.
const SchemaVersion = 1

// Strategy names, in the public (wire) spelling used by the cfq API, the
// workload journal and the regret table. internal/plan deliberately speaks
// only these names: mapping to core.Strategy happens at the cfq boundary,
// so strategy selection literals stay inside this package.
const (
	Optimized  = "optimized"
	NoJmax     = "nojmax"
	CAP        = "cap"
	Apriori    = "apriori"
	FM         = "fm"
	Sequential = "sequential"
)

// Names lists every plannable strategy in preference order: on a cost tie
// the earlier name wins, so decisions are deterministic.
func Names() []string {
	return []string{Optimized, NoJmax, Sequential, CAP, Apriori, FM}
}

// coreNames maps wire spellings to core.Strategy.String() spellings. Kept
// as data (not core.Strategy values) so the package stays a pure decision
// layer with no dependency on the engine.
var coreNames = map[string]string{
	Optimized:  "optimized",
	NoJmax:     "optimized-nojmax",
	CAP:        "cap-1var",
	Apriori:    "apriori+",
	FM:         "fm",
	Sequential: "sequential",
}

// CoreName translates a wire strategy name to the core engine's spelling
// (e.g. "nojmax" → "optimized-nojmax"). Unknown names pass through.
func CoreName(name string) string {
	if cn, ok := coreNames[name]; ok {
		return cn
	}
	return name
}

// WireName translates a core engine spelling back to the wire name
// (e.g. "apriori+" → "apriori"). Unknown names pass through.
func WireName(core string) string {
	for wire, cn := range coreNames {
		if cn == core {
			return wire
		}
	}
	return core
}

// Miner names (mine.Miner spellings).
const (
	MinerLevelwise = "levelwise"
	MinerFPGrowth  = "fpgrowth"
)

// Decision sources.
const (
	SourceModel    = "model"    // static cost model
	SourceFeedback = "feedback" // measured per-class override
	SourceFallback = "fallback" // missing/degenerate features
)

// mDecisions counts planner decisions by chosen strategy and source.
var mDecisions = obs.NewCounterVec("plan_decisions_total", "strategy", "source")

// Alternative is one costed strategy the planner did not choose.
type Alternative struct {
	Strategy string  `json:"strategy"`
	Cost     float64 `json:"cost"`
	Reason   string  `json:"reason"`
}

// Decision is the planner's executable output for one query.
type Decision struct {
	Schema   int    `json:"schema"`
	Strategy string `json:"strategy"`
	// Jmax reports whether the iterative dynamic-bound loop runs (true only
	// for the dovetailed optimized strategy).
	Jmax bool `json:"jmax"`
	// JmaxCutoff, when > 0, freezes the dynamic bounds after that many
	// dovetail iterations (core.CFQ.JmaxCutoff).
	JmaxCutoff int `json:"jmax_cutoff,omitempty"`
	// Miner selects the complete-mining engine (mine.ParseMiner name).
	Miner  string `json:"miner"`
	Source string `json:"source"`
	Class  string `json:"class,omitempty"`
	// Cost is the chosen strategy's modeled cost (unitless; comparable only
	// within one decision).
	Cost float64 `json:"cost"`
	// Rejected lists the costed alternatives, cheapest first.
	Rejected []Alternative `json:"rejected,omitempty"`
}

// Choice converts the decision to its EXPLAIN rendering.
func (d *Decision) Choice() *obs.PlanChoice {
	if d == nil {
		return nil
	}
	pc := &obs.PlanChoice{
		Strategy:   d.Strategy,
		Jmax:       d.Jmax,
		JmaxCutoff: d.JmaxCutoff,
		Miner:      d.Miner,
		Source:     d.Source,
		Cost:       d.Cost,
	}
	for _, alt := range d.Rejected {
		pc.Rejected = append(pc.Rejected, obs.PlanAlternative{
			Strategy: alt.Strategy, Cost: alt.Cost, Reason: alt.Reason,
		})
	}
	return pc
}

// classFeedback is the measured per-class table folded from the regret
// snapshot: mean wall per strategy (wire names), plus the best strategy.
type classFeedback struct {
	best   string
	meanMS map[string]float64
}

// Options configure a Planner.
type Options struct {
	// Default is the strategy the fallback path picks (wire name).
	// Empty = Optimized.
	Default string
	// MaxClasses bounds the per-class feedback table (<= 0: 64).
	MaxClasses int
}

// Planner makes strategy decisions. Safe for concurrent use. Decisions are
// deterministic in (features, class, folded feedback state).
type Planner struct {
	opts Options

	mu      sync.Mutex
	classes map[string]*classFeedback
	// cal holds per-strategy EWMA calibration multipliers: measured
	// relative cost over predicted relative cost, folded from classes whose
	// rollups carry feature vectors. 1 = model trusted as-is.
	cal       map[string]float64
	decisions map[string]int64 // by source
	folds     int64
}

// New builds a planner.
func New(opts Options) *Planner {
	if opts.Default == "" {
		opts.Default = Optimized
	}
	if _, ok := coreNames[opts.Default]; !ok {
		opts.Default = Optimized
	}
	if opts.MaxClasses <= 0 {
		opts.MaxClasses = 64
	}
	return &Planner{
		opts:      opts,
		classes:   map[string]*classFeedback{},
		cal:       map[string]float64{},
		decisions: map[string]int64{},
	}
}

// minFeedbackRuns is how many shadow runs a strategy needs within a class
// before its measured mean participates in feedback decisions.
const minFeedbackRuns = 2

// feedbackMargin is how much slower (measured) the model's pick must be
// than the class's measured best before feedback overrides the model.
const feedbackMargin = 1.1

// fmGuardItems mirrors core's maxFMItems guard: FM materializes 2^N
// subsets and is only usable on tiny domains.
const fmGuardItems = 16

// Decide picks a strategy for the query described by f. class, when known
// (the workload journal's ClassKey), routes measured per-class feedback;
// empty class uses the static model only. A nil or degenerate feature
// vector falls back to the configured default strategy — never an error.
func (p *Planner) Decide(f *obs.QueryFeatures, class string) *Decision {
	if f == nil || f.Transactions <= 0 || (f.DomainS <= 0 && f.DomainT <= 0) {
		return p.fallback(class)
	}
	costs := modelCosts(f)

	p.mu.Lock()
	for i := range costs {
		if m, ok := p.cal[costs[i].name]; ok && !math.IsInf(costs[i].cost, 1) {
			costs[i].cost *= m
		}
	}
	cf := p.classes[class]
	p.mu.Unlock()

	// Order by adjusted cost; ties resolve by the Names() preference order,
	// which costs[] is already in.
	sort.SliceStable(costs, func(i, j int) bool { return costs[i].cost < costs[j].cost })
	chosen := costs[0]
	source := SourceModel

	// Feedback override: when shadow measurements exist for this class and
	// say the model's pick is more than feedbackMargin slower than the
	// measured best, trust the measurement.
	if cf != nil && cf.best != "" && cf.best != chosen.name {
		bestMS := cf.meanMS[cf.best]
		if pickMS, measured := cf.meanMS[chosen.name]; measured && bestMS > 0 && pickMS > feedbackMargin*bestMS {
			for i := range costs {
				if costs[i].name == cf.best {
					chosen = costs[i]
					source = SourceFeedback
					chosen.reason = fmt.Sprintf("measured %.3gms vs %.3gms for model pick in this class", bestMS, pickMS)
					break
				}
			}
		}
	}

	d := &Decision{
		Schema:   SchemaVersion,
		Strategy: chosen.name,
		Miner:    chosen.miner,
		Source:   source,
		Class:    class,
		Cost:     round3(chosen.cost),
	}
	if d.Miner == "" {
		d.Miner = MinerLevelwise
	}
	if d.Strategy == Optimized && f.Constraints2 > 0 {
		d.Jmax = true
		// Bound the iterative loop: dynamic bounds tighten in the first few
		// levels; past ~log2 of the frontier breadth the summarization cost
		// outweighs further tightening, so the bounds freeze.
		b := maxInt(f.FrequentItemsS, f.FrequentItemsT)
		d.JmaxCutoff = 2 + int(math.Ceil(math.Log2(float64(1+b))))
	}
	for _, c := range costs {
		if c.name == chosen.name {
			continue
		}
		reason := c.reason
		if reason == "" {
			reason = fmt.Sprintf("modeled cost %.3g vs %.3g", round3(c.cost), round3(chosen.cost))
		}
		cost := round3(c.cost)
		if math.IsInf(cost, 0) || math.IsNaN(cost) {
			cost = -1 // guarded out entirely; JSON cannot carry Inf
		}
		d.Rejected = append(d.Rejected, Alternative{Strategy: c.name, Cost: cost, Reason: reason})
	}
	p.record(d)
	return d
}

// fallback is the no-features path: the configured default, never an error.
func (p *Planner) fallback(class string) *Decision {
	d := &Decision{
		Schema:   SchemaVersion,
		Strategy: p.opts.Default,
		Jmax:     p.opts.Default == Optimized,
		Miner:    MinerLevelwise,
		Source:   SourceFallback,
		Class:    class,
	}
	p.record(d)
	return d
}

func (p *Planner) record(d *Decision) {
	mDecisions.WithLabels(d.Strategy, d.Source).Inc()
	p.mu.Lock()
	p.decisions[d.Source]++
	p.mu.Unlock()
}

// Fold ingests one snapshot of the workload's measured ground truth: the
// shadow regret table (per class × strategy mean walls) and the journal's
// per-class rollups (whose feature vectors let predicted costs be compared
// against measured ones). Repeated folds replace per-class tables and move
// the per-strategy calibration by EWMA.
func (p *Planner) Fold(regret []workload.ClassRegret, rollups []workload.ClassRollup) {
	feats := map[string]*obs.QueryFeatures{}
	for _, r := range rollups {
		if r.Features != nil {
			feats[r.Class] = r.Features
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.folds++
	for _, cr := range regret {
		cf := &classFeedback{meanMS: map[string]float64{}}
		bestMS := 0.0
		for _, sr := range cr.Strategies {
			if sr.Runs < minFeedbackRuns {
				continue
			}
			if _, ok := coreNames[sr.Strategy]; !ok {
				continue // "session", "auto", … — not a plannable strategy
			}
			cf.meanMS[sr.Strategy] = sr.MeanMS
			if bestMS == 0 || sr.MeanMS < bestMS {
				bestMS = sr.MeanMS
				cf.best = sr.Strategy
			}
		}
		if len(cf.meanMS) == 0 {
			continue
		}
		if _, ok := p.classes[cr.Class]; !ok && len(p.classes) >= p.opts.MaxClasses {
			continue
		}
		p.classes[cr.Class] = cf

		// Calibration: compare measured relative cost (vs the class's best)
		// with predicted relative cost, and nudge each strategy's multiplier
		// toward the measured ratio.
		f := feats[cr.Class]
		if f == nil || bestMS <= 0 {
			continue
		}
		predicted := map[string]float64{}
		for _, c := range modelCosts(f) {
			predicted[c.name] = c.cost
		}
		predBest := math.Inf(1)
		for name := range cf.meanMS {
			if pc, ok := predicted[name]; ok && pc < predBest {
				predBest = pc
			}
		}
		if math.IsInf(predBest, 1) || predBest <= 0 {
			continue
		}
		for name, ms := range cf.meanMS {
			pc, ok := predicted[name]
			if !ok || pc <= 0 || math.IsInf(pc, 1) {
				continue
			}
			measuredRel := ms / bestMS
			predictedRel := pc / predBest
			ratio := measuredRel / predictedRel
			// Clamp single-fold influence; EWMA smooths across folds.
			ratio = math.Max(0.25, math.Min(4, ratio))
			if cur, ok := p.cal[name]; ok {
				p.cal[name] = 0.8*cur + 0.2*ratio
			} else {
				p.cal[name] = ratio
			}
		}
	}
}

// State is the planner's introspection view (/statz).
type State struct {
	Default     string             `json:"default"`
	Folds       int64              `json:"folds"`
	Classes     int                `json:"classes"`
	Decisions   map[string]int64   `json:"decisions,omitempty"`
	Calibration map[string]float64 `json:"calibration,omitempty"`
}

// State snapshots the planner.
func (p *Planner) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := State{Default: p.opts.Default, Folds: p.folds, Classes: len(p.classes)}
	if len(p.decisions) > 0 {
		st.Decisions = make(map[string]int64, len(p.decisions))
		for k, v := range p.decisions {
			st.Decisions[k] = v
		}
	}
	if len(p.cal) > 0 {
		st.Calibration = make(map[string]float64, len(p.cal))
		for k, v := range p.cal {
			st.Calibration[k] = round3(v)
		}
	}
	return st
}

// costed is one strategy's modeled cost.
type costed struct {
	name   string
	miner  string
	cost   float64
	reason string // non-empty for guard rejections (FM)
}

// modelCosts prices every strategy for the feature vector, returned in
// Names() preference order. All terms are unitless.
func modelCosts(f *obs.QueryFeatures) []costed {
	selS, selT := clampSel(f.SelectivityS), clampSel(f.SelectivityT)
	rawS, rawT := math.Max(1, float64(f.FrequentItemsS)), math.Max(1, float64(f.FrequentItemsT))
	bS, bT := math.Max(1, rawS*selS), math.Max(1, rawT*selT)
	n := math.Max(1, float64(f.Transactions))
	pass := n / 1000

	// lat models one side's counted-lattice work: depth grows ~log of the
	// frontier, per-level candidate counts ~quadratically in breadth.
	lat := func(b float64) float64 {
		return pass * (1 + math.Log2(1+b)) * (1 + b*b/256)
	}
	qs := f.QuasiSuccinct2
	nqs := f.Constraints2 - qs
	// Quasi-succinct reduction shrinks both frontiers (succinct 1-var
	// conditions prune at generation — Section 4).
	redQS := math.Pow(0.55, math.Min(float64(qs), 3))
	// Non-quasi-succinct constraints prune only via dynamic bounds: the
	// dovetailed Jmax loop shrinks both sides mid-flight …
	dynOpt := math.Pow(0.7, math.Min(float64(nqs), 3))
	// … while the sequential strategy resolves exact bounds against the
	// finished T lattice: maximal S-side shrink (exact ≥ iterative), but no
	// mid-flight shrink at all for T.
	exact := 0.85 * dynOpt
	// jmaxProbe is the per-iteration summarization + filter overhead the
	// dovetailed loop pays whether or not the bounds end up pruning.
	probe := 0.0
	if f.Constraints2 > 0 {
		probe = float64(f.Constraints2) * (bS + bT) * pass * 0.02
	}
	// replan is phase 1 + constraint reduction setup: only the 2-var
	// strategies pay it.
	replan := 2 * pass
	if f.Constraints2 == 0 {
		// No 2-var constraints: reduction machinery is a no-op.
		redQS, dynOpt, exact, probe = 1, 1, 1, 0
	}
	// Pair formation: 2-var constraints not pushed into the lattices are
	// checked on the S×T product of valid sets (≈ 2× frontier each side).
	pairs := func(a, b float64) float64 {
		if f.Constraints2 == 0 {
			return 0
		}
		return float64(f.Constraints2) * (2 * a) * (2 * b) * pass * 1e-4
	}

	unconstrained := f.Constraints1S == 0 && f.Constraints1T == 0 && f.Constraints2 == 0
	aprioriMiner := MinerLevelwise
	aprioriCost := lat(rawS) + lat(rawT) + pairs(rawS, rawT)
	if unconstrained {
		// Pure frequent-set mining: FP-growth skips candidate generation.
		aprioriMiner = MinerFPGrowth
		aprioriCost *= 0.85
	}

	fmCost := math.Inf(1)
	fmReason := fmt.Sprintf("full materialization guarded to %d-item domains", fmGuardItems)
	if dom := maxInt(f.DomainS, f.DomainT); dom <= fmGuardItems && dom > 0 {
		fmCost = math.Pow(2, float64(dom)) * pass * 0.01
		fmReason = ""
	}

	return []costed{
		{name: Optimized, cost: replan + lat(bS*redQS*dynOpt) + lat(bT*redQS*dynOpt) + pairs(bS*redQS*dynOpt, bT*redQS*dynOpt) + probe},
		{name: NoJmax, cost: replan + lat(bS*redQS) + lat(bT*redQS) + pairs(bS*redQS, bT*redQS)},
		{name: Sequential, cost: replan + lat(bS*redQS*exact) + lat(bT*redQS) + pairs(bS*redQS*exact, bT*redQS)},
		{name: CAP, cost: lat(bS) + lat(bT) + pairs(bS, bT)},
		{name: Apriori, miner: aprioriMiner, cost: aprioriCost},
		{name: FM, cost: fmCost, reason: fmReason},
	}
}

func clampSel(s float64) float64 {
	if s < 0 { // -1: no estimate possible
		return 1
	}
	return math.Max(0.01, math.Min(1, s))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func round3(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Round(v*1000) / 1000
}
