package plan

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/workload"
)

// fig8aFeatures is the measured feature vector of the committed
// fig8a-overlap-33 bench point (scale 25, seed 1); fig8a-overlap-83 differs
// only in DomainT/FrequentItemsT.
func fig8aFeatures() *obs.QueryFeatures {
	return &obs.QueryFeatures{
		Transactions: 4000, Items: 168,
		MinSupportS: 40, MinSupportT: 40,
		DomainS: 604, DomainT: 577,
		FrequentItemsS: 87, FrequentItemsT: 84,
		SelectivityS: 1, SelectivityT: 1,
		Constraints2: 1, QuasiSuccinct2: 1,
	}
}

func fig8bFeatures() *obs.QueryFeatures {
	return &obs.QueryFeatures{
		Transactions: 4000, Items: 168,
		MinSupportS: 40, MinSupportT: 40,
		DomainS: 168, DomainT: 168,
		FrequentItemsS: 143, FrequentItemsT: 143,
		SelectivityS: 0.72, SelectivityT: 0.52,
		Constraints1S: 1, Constraints1T: 1,
		Constraints2: 1, QuasiSuccinct2: 1,
	}
}

// TestDecisionGolden pins the full decision JSON for a fixed feature
// vector: the planner must be deterministic, and the wire shape is
// "schema":1.
func TestDecisionGolden(t *testing.T) {
	p := New(Options{})
	d := p.Decide(fig8aFeatures(), "S,T=quasi-succinct, anti-monotone")
	got, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "schema": 1,
  "strategy": "sequential",
  "jmax": false,
  "miner": "levelwise",
  "source": "model",
  "class": "S,T=quasi-succinct, anti-monotone",
  "cost": 446.512,
  "rejected": [
    {
      "strategy": "nojmax",
      "cost": 519.51,
      "reason": "modeled cost 520 vs 447"
    },
    {
      "strategy": "optimized",
      "cost": 533.19,
      "reason": "modeled cost 533 vs 447"
    },
    {
      "strategy": "cap",
      "cost": 1770.248,
      "reason": "modeled cost 1.77e+03 vs 447"
    },
    {
      "strategy": "apriori",
      "cost": 1770.248,
      "reason": "modeled cost 1.77e+03 vs 447"
    },
    {
      "strategy": "fm",
      "cost": -1,
      "reason": "full materialization guarded to 16-item domains"
    }
  ]
}`
	if string(got) != want {
		t.Errorf("decision drifted from golden:\n got: %s\nwant: %s", got, want)
	}
}

// TestDeterminism: same features, same class, fresh planners ⇒ identical
// JSON bytes.
func TestDeterminism(t *testing.T) {
	mk := func() []byte {
		p := New(Options{})
		d := p.Decide(fig8bFeatures(), "c")
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	if string(a) != string(b) {
		t.Fatalf("non-deterministic decision:\n%s\n%s", a, b)
	}
	// And repeated decides on one planner agree too.
	p := New(Options{})
	d1, _ := json.Marshal(p.Decide(fig8bFeatures(), "c"))
	d2, _ := json.Marshal(p.Decide(fig8bFeatures(), "c"))
	if string(d1) != string(d2) {
		t.Fatalf("same planner, different decisions:\n%s\n%s", d1, d2)
	}
}

// TestBenchPointChoices grounds the static model against the committed
// BENCH.json walls: on every committed workload point the chosen strategy's
// measured wall must be under 2× the best strategy's.
func TestBenchPointChoices(t *testing.T) {
	// Measured walls (ms) from BENCH.json (scale 25, seed 1, schema 1).
	points := []struct {
		name  string
		f     *obs.QueryFeatures
		walls map[string]float64
	}{
		{"fig8a-overlap-33", fig8aFeatures(), map[string]float64{
			Optimized: 54.5, NoJmax: 25.1, CAP: 654.3, Apriori: 601.5, Sequential: 17.3}},
		{"fig8a-overlap-83", &obs.QueryFeatures{
			Transactions: 4000, Items: 168, MinSupportS: 40, MinSupportT: 40,
			DomainS: 604, DomainT: 890, FrequentItemsS: 87, FrequentItemsT: 128,
			SelectivityS: 1, SelectivityT: 1, Constraints2: 1, QuasiSuccinct2: 1,
		}, map[string]float64{
			Optimized: 274.2, NoJmax: 273.5, CAP: 1502.9, Apriori: 1379.4, Sequential: 281.2}},
		{"fig8b-overlap-40", fig8bFeatures(), map[string]float64{
			Optimized: 115.4, NoJmax: 110.6, CAP: 518.2, Apriori: 552.8, Sequential: 111.3}},
		{"fig8b-overlap-80", fig8bFeatures(), map[string]float64{
			Optimized: 327.0, NoJmax: 329.5, CAP: 495.6, Apriori: 529.2, Sequential: 337.4}},
	}
	p := New(Options{})
	for _, pt := range points {
		d := p.Decide(pt.f, "")
		wall, ok := pt.walls[d.Strategy]
		if !ok {
			t.Errorf("%s: chose unmeasured strategy %s", pt.name, d.Strategy)
			continue
		}
		best := math.Inf(1)
		for _, w := range pt.walls {
			if w < best {
				best = w
			}
		}
		if wall >= 2*best {
			t.Errorf("%s: chose %s (%.1fms) ≥ 2× best (%.1fms)", pt.name, d.Strategy, wall, best)
		}
		t.Logf("%s: chose %s (measured %.1fms, best %.1fms, regret %.2f)",
			pt.name, d.Strategy, wall, best, wall/best)
	}
}

// TestFallback: nil or degenerate features degrade to the default strategy
// with source "fallback" — never an error — and bump
// plan_decisions_total{source="fallback"}.
func TestFallback(t *testing.T) {
	before := counterValue(t, "plan_decisions_total", "optimized", "fallback")
	p := New(Options{})
	for _, f := range []*obs.QueryFeatures{nil, {}, {Transactions: -1}} {
		d := p.Decide(f, "cls")
		if d.Source != SourceFallback {
			t.Fatalf("source = %q, want fallback", d.Source)
		}
		if d.Strategy != Optimized {
			t.Fatalf("fallback strategy = %q, want optimized", d.Strategy)
		}
		if d.Schema != 1 {
			t.Fatalf("schema = %d", d.Schema)
		}
	}
	after := counterValue(t, "plan_decisions_total", "optimized", "fallback")
	if after-before != 3 {
		t.Fatalf("plan_decisions_total{optimized,fallback} rose by %d, want 3", after-before)
	}

	// Custom default is honored; unknown default falls back to optimized.
	if d := New(Options{Default: NoJmax}).Decide(nil, ""); d.Strategy != NoJmax {
		t.Fatalf("custom default ignored: %q", d.Strategy)
	}
	if d := New(Options{Default: "bogus"}).Decide(nil, ""); d.Strategy != Optimized {
		t.Fatalf("bogus default not sanitized: %q", d.Strategy)
	}
}

// TestFeedbackOverride: folding a regret snapshot that shows the model's
// pick measurably slower than another strategy flips the per-class choice
// with source "feedback".
func TestFeedbackOverride(t *testing.T) {
	p := New(Options{})
	f := fig8aFeatures()
	class := "inverted"
	base := p.Decide(f, class)
	if base.Source != SourceModel {
		t.Fatalf("pre-fold source = %q", base.Source)
	}
	// Shadow measurements: the model's pick is 10× slower than optimized.
	p.Fold([]workload.ClassRegret{{
		Class: class,
		Strategies: []workload.StrategyRegret{
			{Strategy: base.Strategy, Runs: 5, MeanMS: 100},
			{Strategy: Optimized, Runs: 5, MeanMS: 10},
		},
	}}, nil)
	d := p.Decide(f, class)
	if d.Source != SourceFeedback {
		t.Fatalf("post-fold source = %q, want feedback (chose %s)", d.Source, d.Strategy)
	}
	if d.Strategy != Optimized {
		t.Fatalf("post-fold strategy = %q, want optimized", d.Strategy)
	}
	// Other classes are untouched.
	if other := p.Decide(f, "other"); other.Source != SourceModel {
		t.Fatalf("unrelated class got source %q", other.Source)
	}
	// Non-plannable labels ("session", "auto") never become feedback picks.
	p.Fold([]workload.ClassRegret{{
		Class: "labels",
		Strategies: []workload.StrategyRegret{
			{Strategy: "session", Runs: 9, MeanMS: 1},
			{Strategy: base.Strategy, Runs: 9, MeanMS: 50},
		},
	}}, nil)
	if d := p.Decide(f, "labels"); d.Strategy == "session" {
		t.Fatal("feedback chose non-plannable label")
	}
}

// TestFoldCalibration: rollup feature vectors let the fold move the
// per-strategy calibration multipliers, visible in State().
func TestFoldCalibration(t *testing.T) {
	p := New(Options{})
	f := fig8aFeatures()
	p.Fold([]workload.ClassRegret{{
		Class: "c",
		Strategies: []workload.StrategyRegret{
			{Strategy: Sequential, Runs: 3, MeanMS: 20},
			{Strategy: NoJmax, Runs: 3, MeanMS: 200}, // much worse than predicted
		},
	}}, []workload.ClassRollup{{Class: "c", Features: f}})
	st := p.State()
	if st.Folds != 1 || st.Classes != 1 {
		t.Fatalf("state = %+v", st)
	}
	if st.Calibration[NoJmax] <= st.Calibration[Sequential] {
		t.Fatalf("calibration did not penalize the mispredicted strategy: %+v", st.Calibration)
	}
}

// TestNameMaps: wire ↔ core spellings round-trip.
func TestNameMaps(t *testing.T) {
	for _, n := range Names() {
		if got := WireName(CoreName(n)); got != n {
			t.Errorf("round trip %s → %s → %s", n, CoreName(n), got)
		}
	}
	if CoreName(NoJmax) != "optimized-nojmax" || CoreName(Apriori) != "apriori+" || CoreName(CAP) != "cap-1var" {
		t.Error("core spellings drifted")
	}
	if CoreName("auto") != "auto" {
		t.Error("unknown names must pass through")
	}
}

// TestUnconstrainedMiner: a query with no constraints at all plans the
// generate-and-test baseline on the FP-growth engine.
func TestUnconstrainedMiner(t *testing.T) {
	p := New(Options{})
	d := p.Decide(&obs.QueryFeatures{
		Transactions: 4000, Items: 168, MinSupportS: 40, MinSupportT: 40,
		DomainS: 168, DomainT: 168, FrequentItemsS: 100, FrequentItemsT: 100,
		SelectivityS: 1, SelectivityT: 1,
	}, "")
	if d.Strategy != Apriori || d.Miner != MinerFPGrowth {
		t.Fatalf("unconstrained plan = %s/%s, want apriori/fpgrowth", d.Strategy, d.Miner)
	}
}

// counterValue reads a labeled counter from the obs families snapshot.
func counterValue(t *testing.T, name string, labels ...string) int64 {
	t.Helper()
	for _, fam := range obs.Families() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			if len(s.LabelValues) != len(labels) {
				continue
			}
			match := true
			for i, lv := range s.LabelValues {
				if lv != labels[i] {
					match = false
					break
				}
			}
			if match {
				return int64(s.Value)
			}
		}
	}
	return 0
}
