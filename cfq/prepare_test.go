package cfq

import (
	"context"
	"strings"
	"testing"
)

func autoQuery(ds *Dataset) *Query {
	return NewQuery(ds).
		MinSupport(2).
		Where2(Join(Max, "Price", LE, Min, "Price"))
}

// TestAutoMatchesOptimized: strategy auto answers exactly what every fixed
// strategy answers — the planner only picks how to compute, never what.
func TestAutoMatchesOptimized(t *testing.T) {
	ds := marketDataset(t)
	want, err := autoQuery(ds).Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	got, err := autoQuery(ds).Run(Auto)
	if err != nil {
		t.Fatal(err)
	}
	if got.PairCount != want.PairCount {
		t.Fatalf("auto pair count %d, optimized %d", got.PairCount, want.PairCount)
	}
	gk, wk := pairKeys(got), pairKeys(want)
	if strings.Join(gk, ";") != strings.Join(wk, ";") {
		t.Fatalf("auto pairs %v, optimized pairs %v", gk, wk)
	}
}

// TestPreparedReuse: one Prepare, many Runs — the decision is made once and
// every execution replays it with identical answers.
func TestPreparedReuse(t *testing.T) {
	ds := marketDataset(t)
	p, err := autoQuery(ds).Prepare(Auto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy() == Auto {
		t.Fatal("prepared strategy was not resolved")
	}
	d := p.Decision()
	if d == nil {
		t.Fatal("auto-prepared query has no decision")
	}
	if d.Schema != 1 {
		t.Fatalf("decision schema = %d, want 1", d.Schema)
	}
	if got := p.Strategy().String(); got != d.Strategy {
		t.Fatalf("prepared strategy %q != decision strategy %q", got, d.Strategy)
	}
	first, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.PairCount != second.PairCount ||
		strings.Join(pairKeys(first), ";") != strings.Join(pairKeys(second), ";") {
		t.Fatal("repeated runs of one prepared plan disagree")
	}
}

// TestPreparedFixedStrategy: preparing a concrete strategy skips planning.
func TestPreparedFixedStrategy(t *testing.T) {
	ds := marketDataset(t)
	p, err := autoQuery(ds).Prepare(Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy() != Sequential {
		t.Fatalf("strategy = %v, want sequential", p.Strategy())
	}
	if p.Decision() != nil {
		t.Fatal("fixed-strategy prepare produced a planner decision")
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedSnapshotStable: a prepared plan answers over the snapshot it
// captured — mutations after Prepare do not bleed into its answer.
// (Staleness rejection is the handle holder's job; the server's plan cache
// returns a structured stale_generation error instead of re-running.)
func TestPreparedSnapshotStable(t *testing.T) {
	ds := marketDataset(t)
	p, err := autoQuery(ds).Prepare(Auto)
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.AddTransactions([][]int{{0, 3}, {0, 3}, {0, 3}, {0, 3}}); err != nil {
		t.Fatal(err)
	}
	after, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if after.PairCount != before.PairCount {
		t.Fatalf("prepared plan saw the mutation: %d pairs, want %d", after.PairCount, before.PairCount)
	}
	// A fresh run over the mutated dataset does see the new transactions.
	fresh, err := autoQuery(ds).Run(Auto)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.PairCount == before.PairCount {
		t.Skip("mutation did not change the answer; snapshot test is vacuous")
	}
}

// TestAutoExplainCarriesPlanner: EXPLAIN under auto renders the decision —
// chosen strategy, source, and the costed rejected alternatives.
func TestAutoExplainCarriesPlanner(t *testing.T) {
	ds := marketDataset(t)
	rep, err := autoQuery(ds).ExplainQuery(Auto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Planner == nil {
		t.Fatal("auto EXPLAIN has no planner node")
	}
	if rep.Planner.Source == "" || rep.Planner.Strategy == "" {
		t.Fatalf("planner node incomplete: %+v", rep.Planner)
	}
	if len(rep.Planner.Rejected) == 0 {
		t.Fatal("planner node lists no rejected alternatives")
	}
	tree := rep.Tree()
	if !strings.Contains(tree, "planner: chose "+rep.Planner.Strategy) {
		t.Fatalf("Tree() does not render the planner node:\n%s", tree)
	}
	// Fixed-strategy EXPLAIN stays planner-free.
	fixed, err := autoQuery(ds).ExplainQuery(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Planner != nil {
		t.Fatal("fixed-strategy EXPLAIN grew a planner node")
	}
}

// TestAutoExplainAnalyze: EXPLAIN ANALYZE under auto keeps both contracts —
// the planner node and the pruning-attribution sum.
func TestAutoExplainAnalyze(t *testing.T) {
	ds := marketDataset(t)
	res, rep, err := autoQuery(ds).ExplainAnalyze(Auto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Planner == nil {
		t.Fatal("analyzed auto report has no planner node")
	}
	if !rep.Analyzed {
		t.Fatal("report not marked analyzed")
	}
	if got, want := rep.SumPruned(), res.Stats.CandidatesPruned; got != want {
		t.Fatalf("attributed pruning %d != stats pruned %d", got, want)
	}
}

// TestAutoTraceSpan: a traced auto run records the plan:decide span; a
// traced prepared re-run does not (planning happened once, at Prepare).
func TestAutoTraceSpan(t *testing.T) {
	ds := marketDataset(t)
	tr := NewTracer(TracerOptions{Name: "test"})
	res, err := autoQuery(ds).RunContext(WithTracer(context.Background(), tr), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || !reportHasSpan(res.Report.Root, "plan:decide") {
		t.Fatal("auto run did not record a plan:decide span")
	}

	p, err := autoQuery(ds).Prepare(Auto)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := NewTracer(TracerOptions{Name: "test"})
	res2, err := p.RunContext(WithTracer(context.Background(), tr2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report != nil && reportHasSpan(res2.Report.Root, "plan:decide") {
		t.Fatal("prepared re-run re-planned: found a plan:decide span")
	}
}

func reportHasSpan(s *SpanReport, name string) bool {
	if s == nil {
		return false
	}
	if s.Name == name {
		return true
	}
	for _, c := range s.Children {
		if reportHasSpan(c, name) {
			return true
		}
	}
	return false
}

// TestSessionPrepare: a session-prepared handle executes through the
// session cache and agrees with the engine.
func TestSessionPrepare(t *testing.T) {
	ds := marketDataset(t)
	want, err := autoQuery(ds).Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(ds)
	p, err := s.Prepare(autoQuery(ds))
	if err != nil {
		t.Fatal(err)
	}
	if p.Decision() != nil {
		t.Fatal("session prepare produced a planner decision")
	}
	got, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pairKeys(got), ";") != strings.Join(pairKeys(want), ";") {
		t.Fatal("session-prepared answer disagrees with engine answer")
	}
	// Wrong-dataset queries are rejected at Prepare, like Session.Run.
	other := marketDataset(t)
	if _, err := s.Prepare(autoQuery(other)); err == nil {
		t.Fatal("session prepared a query from another dataset")
	}
}

// TestParseStrategyAuto: the auto spelling round-trips.
func TestParseStrategyAuto(t *testing.T) {
	s, err := ParseStrategy("auto")
	if err != nil || s != Auto {
		t.Fatalf("ParseStrategy(auto) = %v, %v", s, err)
	}
	if Auto.String() != "auto" {
		t.Fatalf("Auto.String() = %q", Auto.String())
	}
}
