package cfq

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSessionCacheLimitEvicts: a bounded session evicts least-recently-used
// domain lattices instead of growing without limit, surfaces the evictions
// in CacheStats, and keeps answering correctly (evicted domains re-mine).
func TestSessionCacheLimitEvicts(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)
	// Fit roughly one lattice: the market dataset's full lattice is a few
	// hundred estimated bytes, so a 1 KiB bound forces domain-vs-domain
	// displacement without forbidding caching entirely.
	sess.SetCacheLimit(1024)

	domains := [][]int{nil, {0, 1, 2}, {3, 4, 5}, {0, 1, 3, 4}}
	want := make([]int64, len(domains))
	for i, dom := range domains {
		q := NewQuery(ds).MinSupport(2)
		if dom != nil {
			q.DomainS(dom...).DomainT(dom...)
		}
		res, err := sess.Run(q)
		if err != nil {
			t.Fatalf("domain %v: %v", dom, err)
		}
		want[i] = res.PairCount
	}
	cs := sess.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("no evictions under a 1 KiB bound: %+v", cs)
	}
	if cs.LimitBytes != 1024 || cs.Bytes > cs.LimitBytes {
		t.Errorf("cache over limit: %+v", cs)
	}
	// Evicted domains still answer correctly (they re-mine).
	for i, dom := range domains {
		q := NewQuery(ds).MinSupport(2)
		if dom != nil {
			q.DomainS(dom...).DomainT(dom...)
		}
		res, err := sess.Run(q)
		if err != nil {
			t.Fatalf("re-query domain %v: %v", dom, err)
		}
		if res.PairCount != want[i] {
			t.Errorf("domain %v: PairCount %d after eviction, want %d", dom, res.PairCount, want[i])
		}
	}

	// An entry larger than the whole limit is rejected outright: the bound
	// stays strict and later queries still work.
	sess.SetCacheLimit(8)
	if _, err := sess.Run(NewQuery(ds).MinSupport(2)); err != nil {
		t.Fatal(err)
	}
	if cs := sess.CacheStats(); cs.Bytes > 8 {
		t.Errorf("oversized lattice retained: %+v", cs)
	}
}

// TestSessionConcurrentSoak hammers one Session from many goroutines with a
// mix of clean runs, budget-tripped runs, cancelled runs, and cache-churning
// domain/threshold variation — the exact reuse pattern a shared-session
// query server relies on. After the storm: no goroutine leaks, and the cache
// is not poisoned (a final query matches a fresh session bit-for-bit).
func TestSessionConcurrentSoak(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	ds := marketDataset(t)
	sess := NewSession(ds)
	sess.SetCacheLimit(64 << 10)

	// Reference answers from plain engine runs (no session, no races).
	type variant struct {
		minSup int
		domain []int
	}
	variants := []variant{
		{2, nil}, {3, nil}, {4, nil},
		{2, []int{0, 1, 2}}, {2, []int{3, 4, 5}},
	}
	want := map[int]string{}
	wantCount := map[int]int64{}
	for i, v := range variants {
		q := NewQuery(ds).MinSupport(v.minSup)
		if v.domain != nil {
			q.DomainS(v.domain...).DomainT(v.domain...)
		}
		res, err := q.Run(Optimized)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = strings.Join(pairKeys(res), ";")
		wantCount[i] = res.PairCount
	}
	buildQuery := func(i int) *Query {
		v := variants[i%len(variants)]
		q := NewQuery(ds).MinSupport(v.minSup)
		if v.domain != nil {
			q.DomainS(v.domain...).DomainT(v.domain...)
		}
		return q
	}

	const workers = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				vi := (w + i) % len(variants)
				q := buildQuery(vi)
				switch (w + i) % 4 {
				case 0, 1: // clean run: answer must be exact
					res, err := sess.Run(q)
					if err != nil {
						errs <- err
						continue
					}
					if got := strings.Join(pairKeys(res), ";"); got != want[vi] || res.PairCount != wantCount[vi] {
						errs <- errors.New("concurrent session answer diverged from direct run")
					}
				case 2: // budget trip: either a BudgetError (mining was
					// needed) or an exact answer (served from cache).
					q.Budget(Budget{MaxCandidates: 1})
					res, err := sess.Run(q)
					if err != nil {
						var be *BudgetError
						if !errors.As(err, &be) {
							errs <- err
						}
						continue
					}
					if res.PairCount != wantCount[vi] {
						errs <- errors.New("budget-path cached answer diverged")
					}
				case 3: // cancellation racing the run
					ctx, cancel := context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration((w+i)%3) * 100 * time.Microsecond)
						cancel()
					}()
					res, err := sess.RunContext(ctx, q)
					cancel()
					if err != nil {
						if !errors.Is(err, context.Canceled) {
							errs <- err
						}
						continue
					}
					if res.PairCount != wantCount[vi] {
						errs <- errors.New("cancel-path answer diverged")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The cache survived the storm unpoisoned: every variant still answers
	// exactly, and a fresh session agrees.
	for i := range variants {
		res, err := sess.Run(buildQuery(i))
		if err != nil {
			t.Fatalf("post-soak variant %d: %v", i, err)
		}
		if got := strings.Join(pairKeys(res), ";"); got != want[i] {
			t.Errorf("post-soak variant %d diverged (poisoned cache?)", i)
		}
	}
	fresh, err := NewSession(ds).Run(buildQuery(0))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.PairCount != wantCount[0] {
		t.Error("fresh session disagrees after soak")
	}

	// No goroutine leaks: the cancellation helpers and miners all unwound.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+2 {
		t.Errorf("goroutines leaked: %d before, %d after", goroutinesBefore, n)
	}
}

// TestSessionStoreRacingMutation: a run that captured the pre-mutation
// snapshot must not store its lattice into the post-mutation cache (the
// "poisoned store" hazard). The mutation is injected between the run's
// compile and its cache store via a budget checkpoint, deterministically.
func TestSessionStoreRacingMutation(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)

	mutated := false
	q := NewQuery(ds).MinSupport(2).Budget(Budget{Checkpoint: func(string) error {
		if !mutated {
			mutated = true
			// Mutate and recompile mid-run: the session's next run flips to
			// the new snapshot; the in-flight run keeps mining the old one.
			if err := ds.AddTransaction(0, 5); err != nil {
				return err
			}
			if err := ds.Compile(); err != nil {
				return err
			}
			// Flip the session's cache generation the way a concurrent
			// request would.
			if _, err := sess.Run(NewQuery(ds).MinSupport(2)); err != nil {
				return err
			}
		}
		return nil
	}})
	// The old-snapshot run completes against its own consistent snapshot…
	if _, err := sess.Run(q); err != nil {
		t.Fatal(err)
	}
	// …but the cache must describe the *new* snapshot: a fresh query's
	// answer matches a direct post-mutation run.
	res, err := sess.Run(NewQuery(ds).MinSupport(2))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewQuery(ds).MinSupport(2).Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairCount != direct.PairCount {
		t.Errorf("stale lattice poisoned the refreshed cache: session %d, direct %d",
			res.PairCount, direct.PairCount)
	}
}
