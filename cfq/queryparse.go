package cfq

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseQuery parses a complete CFQ in the paper's notation against a
// dataset and returns a ready-to-run Query:
//
//	{(S, T) | freq(S) >= 50 & freq(T) >= 50 &
//	          S.Type subset {snacks} & T.Type subset {beer} &
//	          max(S.Price) <= min(T.Price)}
//
// The surrounding "{(S, T) | … }" is optional; conjuncts are separated by
// '&'. Each conjunct is either a frequency constraint (freq(S) >= n — when
// omitted the query's default threshold applies), a 1-var constraint
// mentioning exactly one variable (min(S.Price) >= 8, T.Type subset {ale},
// count(S) <= 3, range(S.Price, 400, 1000)), or a 2-var constraint
// mentioning both (max(S.Price) <= min(T.Price), S.Type = T.Type).
func ParseQuery(ds *Dataset, s string) (*Query, error) {
	q := NewQuery(ds)
	body := strings.TrimSpace(s)
	if strings.HasPrefix(body, "{") {
		if !strings.HasSuffix(body, "}") {
			return nil, fmt.Errorf("cfq: unbalanced braces in %q", s)
		}
		body = body[1 : len(body)-1]
		if i := strings.Index(body, "|"); i >= 0 {
			head := strings.ReplaceAll(strings.TrimSpace(body[:i]), " ", "")
			if head != "(S,T)" {
				return nil, fmt.Errorf("cfq: expected (S, T) head, got %q", body[:i])
			}
			body = body[i+1:]
		}
	}
	conjuncts := strings.Split(body, "&")
	for _, raw := range conjuncts {
		c := strings.TrimSpace(raw)
		if c == "" {
			continue
		}
		if err := parseConjunct(q, c); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func parseConjunct(q *Query, c string) error {
	// Frequency constraints.
	if rest, ok := trimPrefixFold(c, "freq("); ok {
		return parseFreq(q, rest, c)
	}
	refS := mentionsVar(c, "S")
	refT := mentionsVar(c, "T")
	switch {
	case refS && refT:
		c2, err := ParseConstraint2(c)
		if err != nil {
			return err
		}
		q.Where2(c2)
		return nil
	case refS:
		c1, err := ParseConstraint(stripVar(c, "S"))
		if err != nil {
			return err
		}
		q.WhereS(c1)
		return nil
	case refT:
		c1, err := ParseConstraint(stripVar(c, "T"))
		if err != nil {
			return err
		}
		q.WhereT(c1)
		return nil
	}
	return fmt.Errorf("cfq: conjunct %q mentions neither S nor T", c)
}

// parseFreq handles "freq(S) >= n" and the bare "freq(S)".
func parseFreq(q *Query, rest, whole string) error {
	close1 := strings.IndexByte(rest, ')')
	if close1 < 0 {
		return fmt.Errorf("cfq: missing ')' in %q", whole)
	}
	varName := strings.TrimSpace(rest[:close1])
	tail := strings.TrimSpace(rest[close1+1:])
	if varName != "S" && varName != "T" {
		return fmt.Errorf("cfq: freq() of unknown variable %q", varName)
	}
	if tail == "" {
		return nil // implicit threshold: the query default applies
	}
	op, tail := takeOp(tail)
	if op != ">=" && op != ">" {
		return fmt.Errorf("cfq: freq() supports only >= (got %q in %q)", op, whole)
	}
	n, err := strconv.Atoi(strings.TrimSpace(tail))
	if err != nil {
		return fmt.Errorf("cfq: bad frequency threshold in %q", whole)
	}
	if op == ">" {
		n++
	}
	if varName == "S" {
		q.MinSupportS(n)
		q.explicitSupS = true
	} else {
		q.MinSupportT(n)
		q.explicitSupT = true
	}
	return nil
}

// mentionsVar reports whether the conjunct references variable v: "v." or
// the bare "count(v)".
func mentionsVar(c, v string) bool {
	if strings.Contains(c, v+".") {
		return true
	}
	compact := strings.ReplaceAll(c, " ", "")
	return strings.Contains(strings.ToLower(compact), "count("+strings.ToLower(v)+")")
}

// stripVar rewrites a single-variable conjunct into the variable-free form
// ParseConstraint takes: "min(S.Price) >= 8" → "min(Price) >= 8",
// "count(S)" → "count()", "S.Type subset {a}" → "Type subset {a}".
func stripVar(c, v string) string {
	out := strings.ReplaceAll(c, v+".", "")
	// count(S) → count(); tolerate spaces inside the parens.
	for _, form := range []string{"count(" + v + ")", "count( " + v + " )"} {
		if i := foldIndex(out, form); i >= 0 {
			out = out[:i] + "count()" + out[i+len(form):]
		}
	}
	return out
}

// foldIndex is an ASCII-case-insensitive strings.Index whose result is a
// valid byte offset into s (unlike indexing a ToLower copy, which can shift
// offsets on non-UTF-8 input).
func foldIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if asciiFoldEq(s[i:i+len(sub)], sub) {
			return i
		}
	}
	return -1
}
