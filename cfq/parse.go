package cfq

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseConstraint parses a 1-variable constraint from a compact textual
// form (the CLI's query language):
//
//	min(Price) >= 100        — aggregation constraints (min, max, sum, avg)
//	count() <= 3             — cardinality
//	count(Type) = 1          — distinct categorical values
//	range(Price, 400, 1000)  — every item's attribute in [lo, hi]
//	Type subset {beer, ale}  — domain constraints: subset, superset, equal,
//	                           disjoint, intersects, notsubset
func ParseConstraint(s string) (Constraint, error) {
	s = strings.TrimSpace(s)
	if rest, ok := trimPrefixFold(s, "range("); ok {
		args, err := splitArgs(rest)
		if err != nil || len(args) != 3 {
			return Constraint{}, fmt.Errorf("cfq: range wants (attr, lo, hi): %q", s)
		}
		lo, err1 := strconv.ParseFloat(args[1], 64)
		hi, err2 := strconv.ParseFloat(args[2], 64)
		if err1 != nil || err2 != nil {
			return Constraint{}, fmt.Errorf("cfq: bad range bounds in %q", s)
		}
		return Range(args[0], lo, hi), nil
	}
	if agg, rest, ok := parseAggHead(s); ok {
		attrName, opStr, valStr, err := parseAggTail(rest)
		if err != nil {
			return Constraint{}, fmt.Errorf("cfq: %v in %q", err, s)
		}
		op, err := parseOp(opStr)
		if err != nil {
			return Constraint{}, err
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return Constraint{}, fmt.Errorf("cfq: bad constant %q in %q", valStr, s)
		}
		if agg == Count {
			if attrName == "" {
				return Cardinality(op, int(val)), nil
			}
			return DistinctCount(attrName, op, int(val)), nil
		}
		if attrName == "" {
			return Constraint{}, fmt.Errorf("cfq: %v needs an attribute in %q", agg, s)
		}
		return Aggregate(agg, attrName, op, val), nil
	}
	// Domain form: "Attr REL {a, b, c}".
	for rel, name := range relNames {
		idx := foldIndexWord(s, name)
		if idx < 0 {
			continue
		}
		attrName := strings.TrimSpace(s[:idx])
		setPart := strings.TrimSpace(s[idx+len(name):])
		labels, err := parseLabelSet(setPart)
		if err != nil {
			return Constraint{}, fmt.Errorf("cfq: %v in %q", err, s)
		}
		if attrName == "" {
			return Constraint{}, fmt.Errorf("cfq: missing attribute in %q", s)
		}
		return Domain(rel, attrName, labels...), nil
	}
	return Constraint{}, fmt.Errorf("cfq: cannot parse constraint %q", s)
}

// ParseConstraint2 parses a 2-variable constraint:
//
//	max(S.Price) <= min(T.Price)   — aggregation joins
//	S.Type = T.Type                — domain joins: =, subset, superset,
//	S.Type disjoint T.Type           disjoint, intersects, notsubset
func ParseConstraint2(s string) (Constraint2, error) {
	s = strings.TrimSpace(s)
	if agg1, rest, ok := parseAggHead(s); ok {
		// agg1(S.A) OP agg2(T.B)
		close1 := strings.IndexByte(rest, ')')
		if close1 < 0 {
			return Constraint2{}, fmt.Errorf("cfq: missing ')' in %q", s)
		}
		ref1 := strings.TrimSpace(rest[:close1])
		tail := strings.TrimSpace(rest[close1+1:])
		opStr, tail := takeOp(tail)
		if opStr == "" {
			return Constraint2{}, fmt.Errorf("cfq: missing operator in %q", s)
		}
		op, err := parseOp(opStr)
		if err != nil {
			return Constraint2{}, err
		}
		agg2, rest2, ok := parseAggHead(tail)
		if !ok {
			return Constraint2{}, fmt.Errorf("cfq: right side of %q is not an aggregate", s)
		}
		close2 := strings.IndexByte(rest2, ')')
		if close2 < 0 {
			return Constraint2{}, fmt.Errorf("cfq: missing ')' in %q", s)
		}
		ref2 := strings.TrimSpace(rest2[:close2])
		attrA, err := stripVarRef(ref1, "S")
		if err != nil {
			return Constraint2{}, err
		}
		attrB, err := stripVarRef(ref2, "T")
		if err != nil {
			return Constraint2{}, err
		}
		return Join(agg1, attrA, op, agg2, attrB), nil
	}
	// Domain join: "S.A REL T.B" (REL a word or '=').
	fields := strings.Fields(s)
	if len(fields) == 3 {
		attrA, err1 := stripVarRef(fields[0], "S")
		attrB, err2 := stripVarRef(fields[2], "T")
		if err1 == nil && err2 == nil {
			if fields[1] == "=" {
				return DomainJoin(EqualTo, attrA, attrB), nil
			}
			for rel, name := range relNames {
				if strings.EqualFold(fields[1], name) {
					return DomainJoin(rel, attrA, attrB), nil
				}
			}
		}
	}
	return Constraint2{}, fmt.Errorf("cfq: cannot parse 2-var constraint %q", s)
}

var relNames = map[Rel]string{
	SubsetOf:     "subset",
	SupersetOf:   "superset",
	EqualTo:      "equal",
	DisjointFrom: "disjoint",
	Intersects:   "intersects",
	NotSubsetOf:  "notsubset",
}

var aggNames = map[string]Agg{
	"min": Min, "max": Max, "sum": Sum, "avg": Avg, "count": Count,
}

// parseAggHead matches "agg(" and returns the remainder after '('.
func parseAggHead(s string) (Agg, string, bool) {
	for name, agg := range aggNames {
		if rest, ok := trimPrefixFold(s, name+"("); ok {
			return agg, rest, true
		}
	}
	return 0, "", false
}

// parseAggTail parses "Attr) OP value" (Attr may be empty for count()).
func parseAggTail(rest string) (attrName, op, val string, err error) {
	close1 := strings.IndexByte(rest, ')')
	if close1 < 0 {
		return "", "", "", fmt.Errorf("missing ')'")
	}
	attrName = strings.TrimSpace(rest[:close1])
	tail := strings.TrimSpace(rest[close1+1:])
	op, tail = takeOp(tail)
	if op == "" {
		return "", "", "", fmt.Errorf("missing comparison operator")
	}
	val = strings.TrimSpace(tail)
	if val == "" {
		return "", "", "", fmt.Errorf("missing constant")
	}
	return attrName, op, val, nil
}

// takeOp strips a leading comparison operator.
func takeOp(s string) (op, rest string) {
	s = strings.TrimSpace(s)
	for _, cand := range []string{"<=", ">=", "!=", "<", ">", "="} {
		if strings.HasPrefix(s, cand) {
			return cand, strings.TrimSpace(s[len(cand):])
		}
	}
	return "", s
}

func parseOp(s string) (Op, error) {
	switch s {
	case "<=":
		return LE, nil
	case "<":
		return LT, nil
	case ">=":
		return GE, nil
	case ">":
		return GT, nil
	case "=", "==":
		return EQ, nil
	case "!=":
		return NE, nil
	}
	return 0, fmt.Errorf("cfq: unknown operator %q", s)
}

// parseLabelSet parses "{a, b, c}".
func parseLabelSet(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("expected {…} label set, got %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, nil
	}
	parts := strings.Split(inner, ",")
	labels := make([]string, len(parts))
	for i, p := range parts {
		labels[i] = strings.TrimSpace(p)
	}
	return labels, nil
}

// splitArgs splits "a, b, c)" on commas, stripping the trailing ')'.
func splitArgs(rest string) ([]string, error) {
	close1 := strings.IndexByte(rest, ')')
	if close1 < 0 {
		return nil, fmt.Errorf("missing ')'")
	}
	parts := strings.Split(rest[:close1], ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts, nil
}

// stripVarRef turns "S.Price" into "Price", enforcing the variable name.
func stripVarRef(s, varName string) (string, error) {
	s = strings.TrimSpace(s)
	prefix := varName + "."
	if !strings.HasPrefix(strings.ToUpper(s[:min(len(s), len(prefix))]), prefix) {
		return "", fmt.Errorf("cfq: expected %s.<attr>, got %q", varName, s)
	}
	return s[len(prefix):], nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// trimPrefixFold is strings.TrimPrefix with ASCII case folding.
func trimPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return s, false
	}
	if strings.EqualFold(s[:len(prefix)], prefix) {
		return s[len(prefix):], true
	}
	return s, false
}

// foldIndexWord finds an ASCII-case-insensitive occurrence of word
// surrounded by spaces. Byte-wise folding keeps the returned index valid in
// s itself (strings.ToLower can change byte offsets on non-UTF-8 input).
func foldIndexWord(s, word string) int {
	needle := " " + word + " "
	for i := 0; i+len(needle) <= len(s); i++ {
		if asciiFoldEq(s[i:i+len(needle)], needle) {
			return i + 1
		}
	}
	return -1
}

// asciiFoldEq compares equal-length strings byte-wise, folding ASCII case.
func asciiFoldEq(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
