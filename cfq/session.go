package cfq

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/mine"
	"repro/internal/obs"
	"repro/internal/txdb"
)

// Session supports the exploratory loop the two-phase architecture is
// designed around: a user poses a CFQ, inspects the answer, tightens or
// changes constraints, and asks again. A Session caches each variable
// domain's unconstrained frequent lattice (at the lowest support threshold
// seen), so every refinement — different constraints, higher thresholds —
// is answered by filtering the cache with zero database scans.
//
// The trade-off is deliberate: the first query on a domain costs about as
// much as Apriori⁺ (the cache must hold the *unconstrained* lattice to
// serve arbitrary future constraints), so a one-shot query is cheaper via
// Query.Run(Optimized). Sessions pay that once and then make the
// interactive loop free.
//
// A Session is safe for concurrent use: many goroutines may Run queries
// against it simultaneously (the pattern a query server relies on — one
// shared Session per dataset amortizes the lattice cache across all
// clients). Mutating the underlying Dataset invalidates the cache on the
// next Run. A run that is cancelled or runs out of budget writes nothing to
// the cache: retrying the same query on the same session mines afresh and
// returns the same result a new session would. A run that raced a dataset
// mutation never stores its (pre-mutation) lattice into the post-mutation
// cache.
//
// Long-lived servers bound the cache with SetCacheLimit: when the estimated
// cached lattice bytes exceed the limit, least-recently-used domains are
// evicted (surfaced in CacheStats), so a many-dataset daemon cannot grow
// without limit.
type Session struct {
	ds *Dataset

	mu       sync.Mutex
	db       *txdb.DB // the compiled database the cache was built from
	cache    map[string]*latticeEntry
	bytes    int64  // estimated bytes across all cached lattices
	maxBytes int64  // 0 = unbounded
	seq      uint64 // LRU clock: bumped on every lookup/store

	// Lookup/eviction counters, guarded by mu.
	hits, misses, evictions int
}

type latticeEntry struct {
	minSup  int
	sets    []mine.Counted
	bytes   int64
	lastUse uint64
}

// NewSession starts an exploratory session over the dataset.
func NewSession(ds *Dataset) *Session {
	return &Session{ds: ds, cache: map[string]*latticeEntry{}}
}

// SetCacheLimit bounds the estimated bytes of cached lattice state
// (0 restores the default: unbounded). When an insert pushes the cache past
// the limit, least-recently-used entries are evicted until it fits; a
// single lattice larger than the whole limit is not cached at all, so the
// bound is strict. Evicted domains simply re-mine on next use.
func (s *Session) SetCacheLimit(maxBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes = maxBytes
	s.evictLocked()
}

// CacheStats describes the session's lattice cache: lookup counters (one
// lookup per query side), LRU evictions, and current occupancy.
type CacheStats struct {
	// Hits and Misses count cache lookups.
	Hits, Misses int
	// Evictions counts lattices dropped by the SetCacheLimit bound
	// (including oversized lattices rejected at insert).
	Evictions int
	// Entries and Bytes describe current occupancy (Bytes is the same
	// estimate Stats.LatticeBytes uses).
	Entries int
	Bytes   int64
	// LimitBytes is the configured bound (0 = unbounded).
	LimitBytes int64
}

// CacheStats reports the cache counters and occupancy.
func (s *Session) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{
		Hits:       s.hits,
		Misses:     s.misses,
		Evictions:  s.evictions,
		Entries:    len(s.cache),
		Bytes:      s.bytes,
		LimitBytes: s.maxBytes,
	}
}

// Run evaluates the query against the session cache. It is
// RunContext(context.Background(), q).
func (s *Session) Run(q *Query) (*Result, error) {
	return s.RunContext(context.Background(), q)
}

// RunContext evaluates the query against the session cache under ctx, with
// the query's Budget (if any) spanning both sides' mining. Results are
// identical to q.Run with any strategy; only the work differs. An aborted
// run (cancellation or budget) leaves the cache exactly as it was.
func (s *Session) RunContext(ctx context.Context, q *Query) (res *Result, err error) {
	defer recoverToError(&err)
	if q == nil || q.ds != s.ds {
		return nil, fmt.Errorf("cfq: session and query use different datasets")
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}

	// The compiled snapshot captured by compile() is this run's generation
	// token: the whole evaluation (staleness check, mining, cache stores)
	// keys off this one pointer, so a dataset mutation landing mid-run can
	// neither tear what we read nor let us poison the refreshed cache.
	db := icfq.DB
	s.mu.Lock()
	if s.db != db {
		// The dataset was recompiled (new transactions or attributes):
		// every cached lattice is stale.
		s.cache = map[string]*latticeEntry{}
		obs.MCacheBytes.Add(-s.bytes)
		s.bytes = 0
		s.db = db
	}
	s.mu.Unlock()

	// One budget pool for both sides of this evaluation.
	start := time.Now()
	budget := q.budget.internal(start)
	tracer := obs.FromContext(ctx)
	prune := obs.PruningFromContext(ctx)

	// Mining on a cache miss accumulates into the run's Stats directly, so a
	// session result's counters describe this run's actual work and its
	// CandidatesPruned stays equal to the per-site pruning attribution — the
	// same accounting contract the engine strategies keep.
	ires := &core.Result{}
	sSets, err := s.side(ctx, "S", db, icfq.DomainS, icfq.MinSupportS, budget, &ires.Stats)
	if err != nil {
		publishRun(time.Since(start), nil, err)
		return nil, convertErr(err)
	}
	tSets, err := s.side(ctx, "T", db, icfq.DomainT, icfq.MinSupportT, budget, &ires.Stats)
	if err != nil {
		publishRun(time.Since(start), nil, err)
		return nil, convertErr(err)
	}
	// The filter spans attribute the generate-and-test pass over the
	// cached lattices — the session's whole set-computation cost.
	var fsp *obs.Span
	if tracer != nil {
		fsp = tracer.Start("S:filter", obs.Int("cached", len(sSets))).
			WithStats(ires.Stats.Counters())
	}
	ires.LevelsS = filterLattice(sSets, icfq.MinSupportS, icfq.ConstraintsS, &ires.Stats, prune, "S:filter")
	if fsp != nil {
		fsp.End(ires.Stats.Counters())
	}
	if tracer != nil {
		fsp = tracer.Start("T:filter", obs.Int("cached", len(tSets))).
			WithStats(ires.Stats.Counters())
	}
	ires.LevelsT = filterLattice(tSets, icfq.MinSupportT, icfq.ConstraintsT, &ires.Stats, prune, "T:filter")
	if fsp != nil {
		fsp.End(ires.Stats.Counters())
	}

	var psp *obs.Span
	if tracer != nil {
		psp = tracer.Start("pairs").WithStats(ires.Stats.Counters())
	}

	// Pair formation with the 2-var constraints, as in the engine: a
	// rejected pair is one pruned answer candidate charged to its
	// constraint's "pairs:" site, and the enumeration yields to ctx
	// periodically so a drain or deadline can abort a dense answer space.
	const pairCancelStride = 8192
	validS, validT := ires.ValidS(), ires.ValidT()
	if len(icfq.Constraints2) == 0 {
		ires.PairCount = int64(len(validS)) * int64(len(validT))
		limit := ires.PairCount
		if icfq.MaxPairs > 0 && int64(icfq.MaxPairs) < limit {
			limit = int64(icfq.MaxPairs)
		}
		for i := int64(0); i < limit; i++ {
			if i%pairCancelStride == 0 && ctx.Err() != nil {
				publishRun(time.Since(start), nil, ctx.Err())
				return nil, convertErr(fmt.Errorf("cfq: forming pairs: %w", ctx.Err()))
			}
			ires.Pairs = append(ires.Pairs, core.Pair{
				S: validS[i/int64(len(validT))], T: validT[i%int64(len(validT))]})
		}
	} else {
		sites := make([]string, len(icfq.Constraints2))
		for i, c2 := range icfq.Constraints2 {
			sites[i] = fmt.Sprintf("pairs:%v", c2)
		}
		var iter int64
		for _, sv := range validS {
			for _, tv := range validT {
				if iter%pairCancelStride == 0 && ctx.Err() != nil {
					publishRun(time.Since(start), nil, ctx.Err())
					return nil, convertErr(fmt.Errorf("cfq: forming pairs: %w", ctx.Err()))
				}
				iter++
				ok := true
				for i, c2 := range icfq.Constraints2 {
					ires.Stats.PairChecks++
					if !c2.Satisfies(sv.Set, tv.Set) {
						ok = false
						ires.Stats.CandidatesPruned++
						prune.Charge(sites[i], 1)
						break
					}
				}
				if !ok {
					continue
				}
				ires.PairCount++
				if icfq.MaxPairs == 0 || len(ires.Pairs) < icfq.MaxPairs {
					ires.Pairs = append(ires.Pairs, core.Pair{S: sv, T: tv})
				}
			}
		}
	}
	if psp != nil {
		psp.SetAttrs(obs.Int64("pair_count", ires.PairCount))
		psp.End(ires.Stats.Counters())
	}
	publishRun(time.Since(start), &ires.Stats, nil)
	res = convertResult(ires)
	res.Report = tracer.Report()
	return res, nil
}

// side returns the cached unconstrained lattice for a domain, mining it if
// absent or cached at a higher threshold than requested. The lookup (and
// its hit counter) is one critical section; mining happens outside the
// lock, and a failed mining run stores nothing — the cache is never
// poisoned by partial lattices. db is the compiled snapshot this run
// captured; a store is skipped when the cache has moved to a newer
// snapshot, so a slow run racing a dataset mutation cannot resurrect a
// stale lattice.
func (s *Session) side(ctx context.Context, label string, db *txdb.DB, domain itemset.Set, minSup int, budget *mine.Budget, stats *mine.Stats) ([]mine.Counted, error) {
	key := "*"
	if domain != nil {
		key = domain.Key()
	}
	tracer := obs.FromContext(ctx)
	s.mu.Lock()
	if entry := s.cache[key]; entry != nil && entry.minSup <= minSup && s.db == db {
		s.hits++
		s.seq++
		entry.lastUse = s.seq
		sets := entry.sets
		s.mu.Unlock()
		obs.MCacheHits.Inc()
		if tracer != nil {
			tracer.Start(label+":cache-hit", obs.Int("sets", len(sets))).End(nil)
		}
		return sets, nil
	}
	s.mu.Unlock()
	// Published at the decision point (not after mining) so a mid-run
	// metrics scrape sees the lookup that is being served right now.
	obs.MCacheMisses.Inc()

	// The cache-miss span is structural: the labeled miner below emits its
	// own project/level delta spans as children.
	var msp *obs.Span
	if tracer != nil {
		msp = tracer.Start(label + ":cache-miss")
	}
	lw, err := mine.New(ctx, mine.Config{
		DB:         db,
		MinSupport: minSup,
		Domain:     domain,
		Budget:     budget,
		Label:      label,
		Stats:      stats,
	})
	if err != nil {
		msp.End(nil)
		return nil, err
	}
	levels, err := lw.RunAll()
	msp.End(nil)
	if err != nil {
		return nil, err
	}
	var sets []mine.Counted
	for _, lv := range levels {
		sets = append(sets, lv...)
	}
	s.mu.Lock()
	s.misses++
	// Keep the lowest-threshold lattice: it can serve every refinement.
	// Store only while the cache still describes the snapshot we mined —
	// a concurrent mutation flips s.db and this (now stale) lattice must
	// not survive the flip.
	if s.db == db {
		if old := s.cache[key]; old == nil || minSup < old.minSup {
			if old != nil {
				s.bytes -= old.bytes
				obs.MCacheBytes.Add(-old.bytes)
			}
			s.seq++
			entry := &latticeEntry{
				minSup:  minSup,
				sets:    sets,
				bytes:   latticeBytes(sets),
				lastUse: s.seq,
			}
			s.cache[key] = entry
			s.bytes += entry.bytes
			obs.MCacheBytes.Add(entry.bytes)
			s.evictLocked()
		}
	}
	s.mu.Unlock()
	return sets, nil
}

// evictLocked drops least-recently-used lattices until the cache fits the
// configured bound. Callers hold s.mu.
func (s *Session) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && len(s.cache) > 0 {
		var lruKey string
		var lru *latticeEntry
		for k, e := range s.cache {
			if lru == nil || e.lastUse < lru.lastUse {
				lruKey, lru = k, e
			}
		}
		delete(s.cache, lruKey)
		s.bytes -= lru.bytes
		obs.MCacheBytes.Add(-lru.bytes)
		s.evictions++
		obs.MCacheEvictions.Inc()
	}
}

// latticeBytes estimates the retained size of a cached lattice with the
// same per-set model Stats.LatticeBytes uses (rank-space set + original
// copy + map overhead), plus a fixed per-entry overhead.
func latticeBytes(sets []mine.Counted) int64 {
	total := int64(64)
	for _, c := range sets {
		total += int64(16*c.Set.Len() + 64)
	}
	return total
}

// filterLattice applies the support threshold and 1-var constraints to a
// cached lattice, regrouping by level (generate-and-test over the cache:
// each check is counted as a set-level constraint check, and each rejected
// set is a pruned candidate charged to the side's filter site).
func filterLattice(sets []mine.Counted, minSup int, cons []constraint.Constraint, stats *mine.Stats, prune *obs.PruneSet, site string) [][]mine.Counted {
	var levels [][]mine.Counted
	for _, c := range sets {
		if c.Support < minSup {
			stats.CandidatesPruned++
			prune.Charge(site, 1)
			continue
		}
		ok := true
		for _, con := range cons {
			stats.SetConstraintChecks++
			if !con.Satisfies(c.Set) {
				ok = false
				break
			}
		}
		if !ok {
			stats.CandidatesPruned++
			prune.Charge(site, 1)
			continue
		}
		for len(levels) < c.Set.Len() {
			levels = append(levels, nil)
		}
		levels[c.Set.Len()-1] = append(levels[c.Set.Len()-1], c)
	}
	for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	return levels
}
