package cfq

import (
	"fmt"
	"sync"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/mine"
)

// Session supports the exploratory loop the two-phase architecture is
// designed around: a user poses a CFQ, inspects the answer, tightens or
// changes constraints, and asks again. A Session caches each variable
// domain's unconstrained frequent lattice (at the lowest support threshold
// seen), so every refinement — different constraints, higher thresholds —
// is answered by filtering the cache with zero database scans.
//
// The trade-off is deliberate: the first query on a domain costs about as
// much as Apriori⁺ (the cache must hold the *unconstrained* lattice to
// serve arbitrary future constraints), so a one-shot query is cheaper via
// Query.Run(Optimized). Sessions pay that once and then make the
// interactive loop free.
//
// A Session is safe for concurrent use. Mutating the underlying Dataset
// invalidates the cache on the next Run.
type Session struct {
	ds *Dataset

	mu    sync.Mutex
	db    interface{} // the compiled *txdb.DB the cache was built from
	cache map[string]*latticeEntry

	// Hits and Misses count cache lookups (for tests and diagnostics).
	Hits, Misses int
}

type latticeEntry struct {
	minSup int
	sets   []mine.Counted
}

// NewSession starts an exploratory session over the dataset.
func NewSession(ds *Dataset) *Session {
	return &Session{ds: ds, cache: map[string]*latticeEntry{}}
}

// Run evaluates the query against the session cache. Results are identical
// to q.Run with any strategy; only the work differs.
func (s *Session) Run(q *Query) (*Result, error) {
	if q == nil || q.ds != s.ds {
		return nil, fmt.Errorf("cfq: session and query use different datasets")
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.db != interface{}(s.ds.db) {
		// The dataset was recompiled (new transactions or attributes):
		// every cached lattice is stale.
		s.cache = map[string]*latticeEntry{}
		s.db = s.ds.db
	}
	s.mu.Unlock()

	res := &core.Result{}
	sSets, err := s.side(icfq.DomainS, icfq.MinSupportS)
	if err != nil {
		return nil, err
	}
	tSets, err := s.side(icfq.DomainT, icfq.MinSupportT)
	if err != nil {
		return nil, err
	}
	res.LevelsS = filterLattice(sSets, icfq.MinSupportS, icfq.ConstraintsS, &res.Stats)
	res.LevelsT = filterLattice(tSets, icfq.MinSupportT, icfq.ConstraintsT, &res.Stats)

	// Pair formation with the 2-var constraints, as in the engine.
	validS, validT := res.ValidS(), res.ValidT()
	if len(icfq.Constraints2) == 0 {
		res.PairCount = int64(len(validS)) * int64(len(validT))
		limit := res.PairCount
		if icfq.MaxPairs > 0 && int64(icfq.MaxPairs) < limit {
			limit = int64(icfq.MaxPairs)
		}
		for i := int64(0); i < limit; i++ {
			res.Pairs = append(res.Pairs, core.Pair{
				S: validS[i/int64(len(validT))], T: validT[i%int64(len(validT))]})
		}
	} else {
		for _, sv := range validS {
			for _, tv := range validT {
				ok := true
				for _, c2 := range icfq.Constraints2 {
					res.Stats.PairChecks++
					if !c2.Satisfies(sv.Set, tv.Set) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				res.PairCount++
				if icfq.MaxPairs == 0 || len(res.Pairs) < icfq.MaxPairs {
					res.Pairs = append(res.Pairs, core.Pair{S: sv, T: tv})
				}
			}
		}
	}
	return convertResult(res), nil
}

// side returns the cached unconstrained lattice for a domain, mining it if
// absent or cached at a higher threshold than requested.
func (s *Session) side(domain itemset.Set, minSup int) ([]mine.Counted, error) {
	key := "*"
	if domain != nil {
		key = domain.Key()
	}
	s.mu.Lock()
	entry := s.cache[key]
	s.mu.Unlock()
	if entry != nil && entry.minSup <= minSup {
		s.mu.Lock()
		s.Hits++
		s.mu.Unlock()
		return entry.sets, nil
	}
	levels, err := mine.AllFrequent(s.ds.db, minSup, domain, nil)
	if err != nil {
		return nil, err
	}
	var sets []mine.Counted
	for _, lv := range levels {
		sets = append(sets, lv...)
	}
	s.mu.Lock()
	s.Misses++
	// Keep the lowest-threshold lattice: it can serve every refinement.
	if old := s.cache[key]; old == nil || minSup < old.minSup {
		s.cache[key] = &latticeEntry{minSup: minSup, sets: sets}
	}
	s.mu.Unlock()
	return sets, nil
}

// filterLattice applies the support threshold and 1-var constraints to a
// cached lattice, regrouping by level (generate-and-test over the cache:
// each check is counted as a set-level constraint check).
func filterLattice(sets []mine.Counted, minSup int, cons []constraint.Constraint, stats *mine.Stats) [][]mine.Counted {
	var levels [][]mine.Counted
	for _, c := range sets {
		if c.Support < minSup {
			continue
		}
		ok := true
		for _, con := range cons {
			stats.SetConstraintChecks++
			if !con.Satisfies(c.Set) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for len(levels) < c.Set.Len() {
			levels = append(levels, nil)
		}
		levels[c.Set.Len()-1] = append(levels[c.Set.Len()-1], c)
	}
	for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	return levels
}
