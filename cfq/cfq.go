// Package cfq is the public API of the constrained-frequent-set-query
// engine: an implementation of Lakshmanan, Ng, Han & Pang, "Optimization of
// Constrained Frequent Set Queries with 2-variable Constraints" (SIGMOD
// 1999).
//
// A CFQ has the form {(S, T) | C}: find all pairs of frequent itemsets
// (S, T) satisfying a conjunction C of constraints — 1-variable constraints
// on S or T alone (sum(S.Price) <= 100), and 2-variable constraints binding
// them (max(S.Price) <= min(T.Price), S.Type = T.Type). The engine pushes
// constraints into the mining loop as deeply as their classification
// allows: succinct and anti-monotone 1-var constraints via the CAP
// algorithm, quasi-succinct 2-var constraints by reduction to succinct
// 1-var conditions after the first counting iteration, and sum/avg 2-var
// constraints via induced weaker constraints plus Jmax iterative pruning.
//
// Basic use:
//
//	ds := cfq.NewDataset(1000)
//	ds.AddTransaction(3, 17, 101)
//	// … load transactions and item attributes …
//	ds.SetNumeric("Price", prices)
//
//	res, err := cfq.NewQuery(ds).
//		MinSupport(50).
//		WhereS(cfq.Range("Price", 400, 1000)).
//		Where2(cfq.Join(cfq.Max, "Price", cfq.LE, cfq.Min, "Price")).
//		Run(cfq.Optimized)
package cfq

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/twovar"
)

// Op is a comparison operator.
type Op int

// The comparison operators.
const (
	LE Op = iota // <=
	LT           // <
	GE           // >=
	GT           // >
	EQ           // =
	NE           // ≠
)

func (o Op) internal() constraint.Op {
	return [...]constraint.Op{constraint.LE, constraint.LT, constraint.GE,
		constraint.GT, constraint.EQ, constraint.NE}[o]
}

// Agg is an aggregation function.
type Agg int

// The aggregation functions of the constraint language.
const (
	Min Agg = iota
	Max
	Sum
	Avg
	Count
)

func (a Agg) internal() attr.Aggregate {
	return [...]attr.Aggregate{attr.Min, attr.Max, attr.Sum, attr.Avg, attr.Count}[a]
}

// Rel is a domain-constraint relation.
type Rel int

// The domain-constraint relations.
const (
	SubsetOf     Rel = iota // S.A ⊆ V
	SupersetOf              // S.A ⊇ V
	EqualTo                 // S.A = V
	DisjointFrom            // S.A ∩ V = ∅
	Intersects              // S.A ∩ V ≠ ∅
	NotSubsetOf             // S.A ⊄ V
)

func (r Rel) internal() constraint.DomainRel {
	return [...]constraint.DomainRel{constraint.SubsetOf, constraint.SupersetOf,
		constraint.EqualTo, constraint.DisjointFrom, constraint.Intersects,
		constraint.NotSubsetOf}[r]
}

// Strategy selects the computation strategy (see the paper's Section 6 and
// the experiments of Section 7).
type Strategy int

// The strategies.
const (
	// Optimized is the CFQ optimizer's strategy: full constraint pushdown
	// with quasi-succinct reduction and Jmax iterative pruning.
	Optimized Strategy = iota
	// OptimizedNoJmax disables only the iterative pruning (ablation).
	OptimizedNoJmax
	// CAPOnly pushes 1-var constraints only (the SIGMOD'98 CAP algorithm).
	CAPOnly
	// AprioriPlus mines everything, then filters (the baseline).
	AprioriPlus
	// FM materializes valid sets before counting (tiny domains only).
	FM
	// Sequential mines the T lattice to completion before S, giving the
	// exact sum bounds instead of the dovetailed Vᵏ series (Section 5.2's
	// non-dovetailed alternative).
	Sequential
	// Auto defers the choice to the cost-based planner (internal/plan): the
	// query is profiled, its strategies costed, and the cheapest predicted
	// plan executed. Every entry point accepting a Strategy resolves Auto
	// through Prepare, so `auto` works wherever a strategy name does.
	Auto
)

// coreStrategyNames are the engine spellings of the public strategies, in
// enum order; Auto has no engine spelling (it must be resolved by the
// planner first). Strategies are resolved by name through
// core.ParseStrategy so that no engine strategy-selection literal lives
// outside internal/plan (scripts/check.sh enforces this with a grep gate).
var coreStrategyNames = [...]string{
	"optimized", "optimized-nojmax", "cap-1var", "apriori+", "fm", "sequential",
}

func (s Strategy) internal() core.Strategy {
	if s == Auto {
		panic("cfq: strategy auto must be resolved via Prepare before execution")
	}
	if int(s) < 0 || int(s) >= len(coreStrategyNames) {
		panic(fmt.Sprintf("cfq: unknown strategy %d", int(s)))
	}
	cs, err := core.ParseStrategy(coreStrategyNames[s])
	if err != nil {
		panic(fmt.Sprintf("cfq: %v", err))
	}
	return cs
}

// String renders the strategy in the spelling ParseStrategy accepts.
func (s Strategy) String() string {
	names := [...]string{"optimized", "nojmax", "cap", "apriori", "fm", "sequential", "auto"}
	if int(s) < 0 || int(s) >= len(names) {
		return fmt.Sprintf("strategy(%d)", int(s))
	}
	return names[s]
}

// ParseStrategy maps a strategy name (the CLI / wire spelling) to its
// Strategy value: optimized, nojmax, cap, apriori, fm, sequential, auto.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "optimized", "":
		return Optimized, nil
	case "nojmax":
		return OptimizedNoJmax, nil
	case "cap":
		return CAPOnly, nil
	case "apriori":
		return AprioriPlus, nil
	case "fm":
		return FM, nil
	case "sequential":
		return Sequential, nil
	case "auto":
		return Auto, nil
	}
	return 0, fmt.Errorf("cfq: unknown strategy %q", s)
}

// Constraint is a 1-variable constraint specification. Attribute names are
// resolved against the query's Dataset when the query runs.
type Constraint struct {
	build func(*Dataset) (constraint.Constraint, error)
	str   string
}

// String renders the constraint specification.
func (c Constraint) String() string { return c.str }

// Aggregate builds agg(X.attr) op c.
func Aggregate(agg Agg, attrName string, op Op, c float64) Constraint {
	return Constraint{
		str: fmt.Sprintf("%v(X.%s) %v %g", agg.internal(), attrName, op.internal(), c),
		build: func(d *Dataset) (constraint.Constraint, error) {
			num, err := d.numericAttr(attrName)
			if err != nil {
				return nil, err
			}
			return constraint.Agg(agg.internal(), num, attrName, op.internal(), c), nil
		},
	}
}

// Range builds the domain constraint X.attr ⊆ [lo, hi]: every member item's
// attribute lies in the closed interval (the paper's "S.Price <= 400"
// shorthand, with lo/hi = ±Inf for one-sided bounds).
func Range(attrName string, lo, hi float64) Constraint {
	return Constraint{
		str: fmt.Sprintf("X.%s in [%g, %g]", attrName, lo, hi),
		build: func(d *Dataset) (constraint.Constraint, error) {
			num, err := d.numericAttr(attrName)
			if err != nil {
				return nil, err
			}
			return constraint.NumRange(num, attrName, lo, hi), nil
		},
	}
}

// Domain builds the categorical domain constraint X.attr rel {labels}.
func Domain(rel Rel, attrName string, labels ...string) Constraint {
	return Constraint{
		str: fmt.Sprintf("X.%s %v %v", attrName, rel.internal(), labels),
		build: func(d *Dataset) (constraint.Constraint, error) {
			cat, vals, err := d.categoricalValues(attrName, labels)
			if err != nil {
				return nil, err
			}
			return constraint.Domain(rel.internal(), cat, attrName, vals), nil
		},
	}
}

// Cardinality builds count(X) op k.
func Cardinality(op Op, k int) Constraint {
	return Constraint{
		str: fmt.Sprintf("count(X) %v %d", op.internal(), k),
		build: func(*Dataset) (constraint.Constraint, error) {
			return constraint.Card(op.internal(), k), nil
		},
	}
}

// DistinctCount builds count(X.attr) op k over distinct categorical values
// (the paper's count(S.Type) = 1 form).
func DistinctCount(attrName string, op Op, k int) Constraint {
	return Constraint{
		str: fmt.Sprintf("count(X.%s) %v %d", attrName, op.internal(), k),
		build: func(d *Dataset) (constraint.Constraint, error) {
			cat, _, err := d.categoricalValues(attrName, nil)
			if err != nil {
				return nil, err
			}
			return constraint.DistinctCount(cat, attrName, op.internal(), k), nil
		},
	}
}

// Constraint2 is a 2-variable constraint specification.
type Constraint2 struct {
	build func(*Dataset) (twovar.Constraint2, error)
	str   string
}

// String renders the constraint specification.
func (c Constraint2) String() string { return c.str }

// Join builds the 2-var aggregation constraint
// agg1(S.attrA) op agg2(T.attrB).
func Join(agg1 Agg, attrA string, op Op, agg2 Agg, attrB string) Constraint2 {
	return Constraint2{
		str: fmt.Sprintf("%v(S.%s) %v %v(T.%s)",
			agg1.internal(), attrA, op.internal(), agg2.internal(), attrB),
		build: func(d *Dataset) (twovar.Constraint2, error) {
			numA, err := d.numericAttr(attrA)
			if err != nil {
				return nil, err
			}
			numB, err := d.numericAttr(attrB)
			if err != nil {
				return nil, err
			}
			return twovar.Agg2(agg1.internal(), numA, attrA, op.internal(),
				agg2.internal(), numB, attrB), nil
		},
	}
}

// DomainJoin builds the 2-var domain constraint S.attrA rel T.attrB
// (e.g. DomainJoin(EqualTo, "Type", "Type") is S.Type = T.Type).
func DomainJoin(rel Rel, attrA, attrB string) Constraint2 {
	return Constraint2{
		str: fmt.Sprintf("S.%s %v T.%s", attrA, rel.internal(), attrB),
		build: func(d *Dataset) (twovar.Constraint2, error) {
			catA, _, err := d.categoricalValues(attrA, nil)
			if err != nil {
				return nil, err
			}
			catB, _, err := d.categoricalValues(attrB, nil)
			if err != nil {
				return nil, err
			}
			return twovar.Dom2(rel.internal(), catA, attrA, catB, attrB), nil
		},
	}
}
