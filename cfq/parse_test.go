package cfq

import (
	"strings"
	"testing"

	"repro/internal/itemset"
)

func TestParseConstraint(t *testing.T) {
	ds := marketDataset(t)
	valid := []struct {
		in string
		// a set the constraint should accept / reject (items of the market
		// dataset: prices {2,3,4,8,12,20}, types snacks×3 + beer×3)
		accept, reject []int
	}{
		{"sum(Price) <= 10", []int{0, 1, 2}, []int{5}},
		{"min(Price) >= 8", []int{3, 4}, []int{0, 3}},
		{"max(Price)<4", []int{0, 1}, []int{2}},
		{"avg(Price) > 10", []int{4, 5}, []int{0, 1}},
		{"count() <= 2", []int{0, 1}, []int{0, 1, 2}},
		{"count(Type) = 1", []int{0, 1}, []int{0, 3}},
		{"range(Price, 2, 4)", []int{0, 2}, []int{0, 3}},
		{"Type subset {snacks}", []int{0, 1}, []int{3}},
		{"Type disjoint {beer}", []int{0, 2}, []int{4}},
		{"Type intersects {beer}", []int{0, 4}, []int{0, 1}},
		{"Type equal {snacks, beer}", []int{0, 3}, []int{0, 1}},
		{"Type superset {snacks, beer}", []int{2, 5}, []int{0}},
		{"Type notsubset {snacks}", []int{0, 3}, []int{0, 1}},
	}
	for _, tt := range valid {
		c, err := ParseConstraint(tt.in)
		if err != nil {
			t.Errorf("ParseConstraint(%q): %v", tt.in, err)
			continue
		}
		ic, err := c.build(ds)
		if err != nil {
			t.Errorf("build(%q): %v", tt.in, err)
			continue
		}
		if !ic.Satisfies(toSet(tt.accept)) {
			t.Errorf("%q rejected %v", tt.in, tt.accept)
		}
		if ic.Satisfies(toSet(tt.reject)) {
			t.Errorf("%q accepted %v", tt.in, tt.reject)
		}
	}

	invalid := []string{
		"", "garbage", "min(Price", "min() <= 3", "min(Price) ?? 3",
		"min(Price) <= x", "range(Price, 1)", "range(Price, a, b)",
		"Type subset snacks", "subset {a}",
	}
	for _, in := range invalid {
		if _, err := ParseConstraint(in); err == nil {
			t.Errorf("ParseConstraint(%q) succeeded", in)
		}
	}
}

func TestParseConstraint2(t *testing.T) {
	ds := marketDataset(t)
	valid := []struct {
		in    string
		s, tt []int
		want  bool
	}{
		{"max(S.Price) <= min(T.Price)", []int{0, 1}, []int{3, 4}, true},
		{"max(S.Price) <= min(T.Price)", []int{4}, []int{3}, false},
		{"sum(S.Price) >= sum(T.Price)", []int{5}, []int{0, 1}, true},
		{"avg(S.Price) = avg(T.Price)", []int{0, 2}, []int{1}, true}, // (2+4)/2 = 3
		{"S.Type = T.Type", []int{0}, []int{1}, true},
		{"S.Type = T.Type", []int{0}, []int{3}, false},
		{"S.Type disjoint T.Type", []int{0}, []int{3}, true},
		{"S.Type subset T.Type", []int{0, 1}, []int{2, 3}, true},
		{"S.Type intersects T.Type", []int{0, 3}, []int{4}, true},
		{"S.Type notsubset T.Type", []int{0, 3}, []int{4}, true},
		{"S.Type superset T.Type", []int{0, 3}, []int{4}, true},
	}
	for _, tt := range valid {
		c, err := ParseConstraint2(tt.in)
		if err != nil {
			t.Errorf("ParseConstraint2(%q): %v", tt.in, err)
			continue
		}
		ic, err := c.build(ds)
		if err != nil {
			t.Errorf("build(%q): %v", tt.in, err)
			continue
		}
		if got := ic.Satisfies(toSet(tt.s), toSet(tt.tt)); got != tt.want {
			t.Errorf("%q on (%v, %v) = %v, want %v", tt.in, tt.s, tt.tt, got, tt.want)
		}
	}

	invalid := []string{
		"", "max(S.Price) <= 5", "max(Price) <= min(T.Price)",
		"S.Type ~ T.Type", "max(S.Price min(T.Price)", "S.Type = Price",
		"max(S.Price) min(T.Price)",
	}
	for _, in := range invalid {
		if _, err := ParseConstraint2(in); err == nil {
			t.Errorf("ParseConstraint2(%q) succeeded", in)
		}
	}
}

// TestParsedQueryEndToEnd wires parsed constraints through a full run.
func TestParsedQueryEndToEnd(t *testing.T) {
	ds := marketDataset(t)
	c1, err := ParseConstraint("Type subset {snacks}")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseConstraint("min(Price) >= 8")
	if err != nil {
		t.Fatal(err)
	}
	j, err := ParseConstraint2("max(S.Price) <= min(T.Price)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewQuery(ds).MinSupport(2).WhereS(c1).WhereT(c2).Where2(j).Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewQuery(ds).MinSupport(2).
		WhereS(Domain(SubsetOf, "Type", "snacks")).
		WhereT(Aggregate(Min, "Price", GE, 8)).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pairKeys(res), ";") != strings.Join(pairKeys(want), ";") {
		t.Error("parsed and built queries disagree")
	}
}

func toSet(items []int) itemset.Set {
	conv := make([]itemset.Item, len(items))
	for i, it := range items {
		conv[i] = itemset.Item(it)
	}
	return itemset.New(conv...)
}
