package cfq

import (
	"strings"
	"testing"
)

func TestParseQueryFull(t *testing.T) {
	ds := marketDataset(t)
	q, err := ParseQuery(ds, `{(S, T) | freq(S) >= 2 & freq(T) >= 3 &
		S.Type subset {snacks} & T.Type subset {beer} &
		max(S.Price) <= min(T.Price)}`)
	if err != nil {
		t.Fatal(err)
	}
	if q.minSupS != 2 || q.minSupT != 3 {
		t.Errorf("thresholds = %d/%d", q.minSupS, q.minSupT)
	}
	if len(q.consS) != 1 || len(q.consT) != 1 || len(q.cons2) != 1 {
		t.Fatalf("constraints = %d/%d/%d", len(q.consS), len(q.consT), len(q.cons2))
	}
	res, err := q.Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	// Must match the builder-constructed equivalent.
	want, err := NewQuery(ds).MinSupportS(2).MinSupportT(3).
		WhereS(Domain(SubsetOf, "Type", "snacks")).
		WhereT(Domain(SubsetOf, "Type", "beer")).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pairKeys(res), ";") != strings.Join(pairKeys(want), ";") {
		t.Error("parsed query disagrees with built query")
	}
}

func TestParseQueryForms(t *testing.T) {
	ds := marketDataset(t)
	valid := []string{
		"max(S.Price) <= min(T.Price)",               // bare conjunct
		"{ (S,T) | S.Type = T.Type }",                // no head spaces
		"freq(S) & freq(T) & S.Type disjoint T.Type", // bare freq
		"count(S) <= 2 & count(T.Type) = 1",          // counts
		"range(S.Price, 2, 4) & sum(T.Price) >= 10",  // range + sum
		"freq(S) > 1 & min(S.Price) >= 2",            // strict freq
		"avg(S.Price) <= avg(T.Price) & S.Type subset {snacks}",
	}
	for _, s := range valid {
		q, err := ParseQuery(ds, s)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", s, err)
			continue
		}
		if _, err := q.Run(Optimized); err != nil {
			t.Errorf("Run(%q): %v", s, err)
		}
	}

	invalid := []string{
		"{(S,T) | max(S.Price) <= 3",  // unbalanced brace
		"{(X,Y) | max(S.Price) <= 3}", // wrong head
		"max(Price) <= 3",             // no variable
		"freq(Q) >= 3",                // unknown variable
		"freq(S) <= 3",                // wrong direction
		"freq(S) >= lots",             // bad number
		"freq(S",                      // missing paren
		"garbage in & garbage out",    // unparseable conjuncts
		"min(S.Price) <=",             // missing constant
	}
	for _, s := range invalid {
		if _, err := ParseQuery(ds, s); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", s)
		}
	}
}

func TestParseQueryFreqStrict(t *testing.T) {
	ds := marketDataset(t)
	q, err := ParseQuery(ds, "freq(S) > 4 & min(S.Price) >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if q.minSupS != 5 {
		t.Errorf("strict freq threshold = %d, want 5", q.minSupS)
	}
}
