package cfq

import (
	"context"
	"errors"
	"time"

	"repro/internal/mine"
	"repro/internal/obs"
)

// The observability surface of the public API. A caller that wants
// per-phase tracing creates a Tracer, attaches it to the context with
// WithTracer, and runs the query with RunContext (or
// Session.RunContext); the Result then carries a RunReport — the span
// tree with per-phase wall times and work-counter deltas, whose Totals
// reproduce the run's Stats. With no tracer attached the instrumented
// code paths cost one nil comparison each.
//
// Process-wide metrics (queries, durations, budget trips, DB scans,
// cache hits, and the per-run work counters) are always collected; see
// the internal/obs registry, published via expvar under "cfq" and served
// by cmd/cfq's -metrics-addr flag.

// Tracer records the span tree of one or more evaluations. See
// NewTracer and WithTracer.
type Tracer = obs.Tracer

// TracerOptions configures a Tracer: the root span name, an optional
// slog logger receiving one event per completed span, and the level
// those events are emitted at.
type TracerOptions = obs.Options

// RunReport is the machine-readable summary of a traced evaluation.
type RunReport = obs.RunReport

// SpanReport is one node of a RunReport's span tree.
type SpanReport = obs.SpanReport

// NewTracer creates a tracer with an open root span.
func NewTracer(opts TracerOptions) *Tracer { return obs.NewTracer(opts) }

// WithTracer returns a context carrying the tracer. Evaluations run
// under that context record phase spans into it and attach a RunReport
// to their Result. A nil tracer returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// TracerFromContext returns the tracer carried by ctx, or nil.
func TracerFromContext(ctx context.Context) *Tracer { return obs.FromContext(ctx) }

// publishRun folds one evaluation's outcome into the process-wide
// metrics: the query counter, its duration, and the work counters of a
// completed run or a budget-aborted run's partial progress (db_scans
// excluded — txdb publishes scans live).
func publishRun(d time.Duration, stats *mine.Stats, err error) {
	obs.MQueries.Inc()
	obs.MQueryDur.Observe(d)
	if err != nil {
		obs.MQueryErrors.Inc()
		var be *mine.BudgetError
		if errors.As(err, &be) {
			obs.PublishStats(be.Stats.Counters())
		}
		return
	}
	if stats != nil {
		obs.PublishStats(stats.Counters())
	}
}
