package cfq_test

import (
	"fmt"
	"log"

	"repro/cfq"
)

// exampleDataset builds the small market-basket dataset the examples share.
func exampleDataset() *cfq.Dataset {
	ds := cfq.NewDataset(6)
	if err := ds.SetNumeric("Price", []float64{2, 3, 4, 8, 12, 20}); err != nil {
		log.Fatal(err)
	}
	if err := ds.SetCategorical("Type", []string{
		"snacks", "snacks", "snacks", "beer", "beer", "beer",
	}); err != nil {
		log.Fatal(err)
	}
	if err := ds.AddTransactions([][]int{
		{0, 1, 3}, {0, 1, 3}, {0, 1, 4}, {0, 2, 4}, {1, 2, 5},
		{0, 1, 3, 4}, {0, 3}, {1, 4}, {2, 5}, {0, 1, 2, 3, 4, 5},
	}); err != nil {
		log.Fatal(err)
	}
	return ds
}

// The basic flow: build a query with the fluent API and run it with the
// optimizer's strategy.
func ExampleQuery_Run() {
	ds := exampleDataset()
	res, err := cfq.NewQuery(ds).
		MinSupport(3).
		WhereS(cfq.Domain(cfq.SubsetOf, "Type", "snacks")).
		WhereT(cfq.Domain(cfq.SubsetOf, "Type", "beer")).
		Where2(cfq.Join(cfq.Max, "Price", cfq.LE, cfq.Min, "Price")).
		Run(cfq.Optimized)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("%v => %v\n", p.S.Items, p.T.Items)
	}
	// Output:
	// [0] => [3]
	// [0] => [4]
	// [0] => [5]
	// [1] => [3]
	// [1] => [4]
	// [1] => [5]
	// [2] => [3]
	// [2] => [4]
	// [2] => [5]
	// [0 1] => [3]
	// [0 1] => [4]
	// [0 1] => [5]
}

// Queries can also be written in the paper's textual notation.
func ExampleParseQuery() {
	ds := exampleDataset()
	q, err := cfq.ParseQuery(ds,
		"{(S, T) | freq(S) >= 3 & freq(T) >= 3 & S.Type disjoint T.Type & max(S.Price) <= min(T.Price)}")
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Run(cfq.Optimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs:", res.PairCount)
	// Output:
	// pairs: 12
}

// Explain shows how the optimizer decomposes the 2-var constraints without
// running the query.
func ExampleQuery_Explain() {
	ds := exampleDataset()
	plan, err := cfq.NewQuery(ds).
		MinSupport(3).
		Where2(
			cfq.Join(cfq.Max, "Price", cfq.LE, cfq.Min, "Price"),
			cfq.Join(cfq.Sum, "Price", cfq.LE, cfq.Sum, "Price"),
		).Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	// Output:
	// strategy: optimized
	// quasi-succinct: max(S.Price) <= min(T.Price)
	// non-quasi-succinct (induced + iterative): sum(S.Price) <= sum(T.Price)
}

// RunRules derives association rules (phase two of the architecture) from
// the valid pairs.
func ExampleQuery_RunRules() {
	ds := exampleDataset()
	rules, err := cfq.NewQuery(ds).
		MinSupport(3).
		WhereS(cfq.Domain(cfq.SubsetOf, "Type", "snacks")).
		WhereT(cfq.Domain(cfq.SubsetOf, "Type", "beer")).
		RunRules(cfq.Optimized, cfq.RuleParams{MinConfidence: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		fmt.Printf("%v => %v conf %.2f\n", r.S, r.T, r.Confidence)
	}
	// Output:
	// [0 1] => [3] conf 0.80
	// [2] => [5] conf 0.75
	// [0] => [3] conf 0.71
}
