package cfq

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/itemset"
)

// budgetQuery is the 2-var query the abort tests run: enough work on both
// lattices that checkpoints are plentiful.
func budgetQuery(ds *Dataset) *Query {
	return NewQuery(ds).MinSupport(2).
		Where2(Join(Max, "Price", LE, Min, "Price"))
}

// TestRunContextFaultInjection aborts both evaluation strategies at their
// first, middle, and last checkpoint and checks that a clean re-run still
// returns the baseline answer.
func TestRunContextFaultInjection(t *testing.T) {
	ds := marketDataset(t)
	for _, st := range []struct {
		name string
		s    Strategy
	}{{"optimized", Optimized}, {"apriori", AprioriPlus}} {
		t.Run(st.name, func(t *testing.T) {
			baseline, err := budgetQuery(ds).Run(st.s)
			if err != nil {
				t.Fatal(err)
			}
			probe := faultinject.Count()
			if _, err := budgetQuery(ds).Budget(Budget{Checkpoint: probe.Checkpoint}).Run(st.s); err != nil {
				t.Fatal(err)
			}
			n := probe.Seen()
			if n < 3 {
				t.Fatalf("only %d checkpoints", n)
			}
			for _, at := range []int64{1, (n + 1) / 2, n} {
				inj := faultinject.Fail(at, nil)
				_, err := budgetQuery(ds).Budget(Budget{Checkpoint: inj.Checkpoint}).
					RunContext(context.Background(), st.s)
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("inject at %d/%d: err = %v", at, n, err)
				}
				again, err := budgetQuery(ds).Run(st.s)
				if err != nil {
					t.Fatalf("re-run after abort at %d: %v", at, err)
				}
				if strings.Join(pairKeys(again), ";") != strings.Join(pairKeys(baseline), ";") {
					t.Errorf("abort at %d/%d changed a later clean run", at, n)
				}
			}
		})
	}
}

// TestRunContextBudgetError: an exhausted candidate budget surfaces as the
// public *BudgetError with the partial work counters attached.
func TestRunContextBudgetError(t *testing.T) {
	ds := marketDataset(t)
	_, err := budgetQuery(ds).Budget(Budget{MaxCandidates: 1}).
		RunContext(context.Background(), Optimized)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *cfq.BudgetError", err)
	}
	if be.Resource != ResourceCandidates {
		t.Errorf("Resource = %q", be.Resource)
	}
	if be.Where == "" {
		t.Error("Where is empty")
	}
	if be.Stats.Checkpoints == 0 {
		t.Error("partial stats not populated")
	}
	if !strings.Contains(be.Error(), "budget exhausted") {
		t.Errorf("Error() = %q", be.Error())
	}
}

// TestRunContextTimeout: the soft Timeout reports a deadline BudgetError;
// a real context deadline reports context.DeadlineExceeded.
func TestRunContextTimeout(t *testing.T) {
	ds := marketDataset(t)
	_, err := budgetQuery(ds).Budget(Budget{Timeout: time.Nanosecond}).
		RunContext(context.Background(), Optimized)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != ResourceDeadline {
		t.Fatalf("soft timeout: err = %v, want deadline BudgetError", err)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = budgetQuery(ds).RunContext(ctx, Optimized)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx deadline: err = %v", err)
	}
}

// TestRunContextCancelled: a pre-cancelled context aborts every strategy
// with context.Canceled reachable through the wrapping.
func TestRunContextCancelled(t *testing.T) {
	ds := marketDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, st := range []Strategy{Optimized, OptimizedNoJmax, CAPOnly, AprioriPlus, FM, Sequential} {
		if _, err := budgetQuery(ds).RunContext(ctx, st); !errors.Is(err, context.Canceled) {
			t.Errorf("strategy %v: err = %v, want context.Canceled", st, err)
		}
	}
}

// TestSessionCancelledThenRetried: a run cancelled mid-mining writes nothing
// to the session cache; retrying the same query succeeds and matches a fresh
// session exactly.
func TestSessionCancelledThenRetried(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultinject.Cancel(1, cancel)
	q := budgetQuery(ds).Budget(Budget{Checkpoint: inj.Checkpoint})
	if _, err := sess.RunContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v", err)
	}
	if cs := sess.CacheStats(); cs.Misses != 0 || cs.Hits != 0 {
		t.Fatalf("aborted run touched the cache: hits=%d misses=%d", cs.Hits, cs.Misses)
	}

	// Retry on the same session vs a brand-new one.
	retried, err := sess.Run(budgetQuery(ds))
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	fresh, err := NewSession(ds).Run(budgetQuery(ds))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pairKeys(retried), ";") != strings.Join(pairKeys(fresh), ";") ||
		retried.PairCount != fresh.PairCount {
		t.Error("retried session differs from a fresh session")
	}
	if cs := sess.CacheStats(); cs.Misses != 1 {
		t.Errorf("misses after retry = %d, want 1 (cache was not poisoned)", cs.Misses)
	}
}

// TestSessionBudgetError: budget exhaustion inside a session run surfaces as
// the public error type and also leaves the cache unwritten.
func TestSessionBudgetError(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)
	q := budgetQuery(ds).Budget(Budget{MaxFrequentSets: 1})
	_, err := sess.Run(q)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != ResourceFrequentSets {
		t.Fatalf("err = %v, want frequent-sets BudgetError", err)
	}
	if cs := sess.CacheStats(); cs.Misses != 0 {
		t.Error("aborted run cached a partial lattice")
	}
	if _, err := sess.Run(budgetQuery(ds)); err != nil {
		t.Fatalf("retry without budget: %v", err)
	}
}

// TestMalformedTransactionSurfacesAsError: a transaction violating the
// itemset invariants (injected past the validating mutators, as a buggy
// integration might) must surface as an error from the public API, never as
// a panic.
func TestMalformedTransactionSurfacesAsError(t *testing.T) {
	ds := NewDataset(6)
	if err := ds.SetNumeric("Price", []float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddTransaction(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	// A non-monotone raw set: itemset.New would have sorted it, so this can
	// only arrive through a code path that skips validation.
	ds.txs = append(ds.txs, itemset.Set{3, 1, 2})
	ds.dirty = true

	_, err := NewQuery(ds).MinSupport(1).Run(Optimized)
	if err == nil {
		t.Fatal("malformed transaction accepted")
	}
	if !strings.Contains(err.Error(), "cfq: internal error") {
		t.Errorf("err = %v, want the cfq panic-boundary wrapping", err)
	}
	// The same boundary guards session runs.
	if _, err := NewSession(ds).Run(NewQuery(ds).MinSupport(1)); err == nil {
		t.Error("session accepted malformed transaction")
	}
}

// TestReadTransactionsMalformed: malformed text input errors cleanly.
func TestReadTransactionsMalformed(t *testing.T) {
	ds := NewDataset(4)
	if err := ds.ReadTransactions(strings.NewReader("0 1\n2 x\n")); err == nil {
		t.Error("bad token accepted")
	}
	if err := ds.ReadTransactions(strings.NewReader("0 1\n2 9\n")); err == nil {
		t.Error("out-of-domain item accepted")
	}
}
