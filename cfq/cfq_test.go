package cfq

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// marketDataset builds the running example of the paper: snacks and beers
// with prices, plus transactions correlating them.
func marketDataset(t *testing.T) *Dataset {
	t.Helper()
	ds := NewDataset(6)
	// Items: 0 chips($2), 1 pretzels($3), 2 nuts($4) — snacks;
	//        3 lager($8), 4 stout($12), 5 porter($20) — beers.
	if err := ds.SetNumeric("Price", []float64{2, 3, 4, 8, 12, 20}); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetCategorical("Type", []string{
		"snacks", "snacks", "snacks", "beer", "beer", "beer",
	}); err != nil {
		t.Fatal(err)
	}
	txs := [][]int{
		{0, 1, 3}, {0, 1, 3}, {0, 1, 4}, {0, 2, 4}, {1, 2, 5},
		{0, 1, 3, 4}, {0, 3}, {1, 4}, {2, 5}, {0, 1, 2, 3, 4, 5},
	}
	if err := ds.AddTransactions(txs); err != nil {
		t.Fatal(err)
	}
	return ds
}

func pairKeys(res *Result) []string {
	var keys []string
	for _, p := range res.Pairs {
		keys = append(keys, joinInts(p.S.Items)+"|"+joinInts(p.T.Items))
	}
	sort.Strings(keys)
	return keys
}

func joinInts(v []int) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(rune('0' + x)))
	}
	return b.String()
}

func TestQuickstartFlow(t *testing.T) {
	ds := marketDataset(t)
	res, err := NewQuery(ds).
		MinSupport(2).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairCount == 0 {
		t.Fatal("no pairs found")
	}
	// Every pair must satisfy the constraint.
	priced := []float64{2, 3, 4, 8, 12, 20}
	for _, p := range res.Pairs {
		maxS := math.Inf(-1)
		for _, it := range p.S.Items {
			maxS = math.Max(maxS, priced[it])
		}
		minT := math.Inf(1)
		for _, it := range p.T.Items {
			minT = math.Min(minT, priced[it])
		}
		if maxS > minT {
			t.Errorf("pair (%v, %v) violates max(S) <= min(T)", p.S.Items, p.T.Items)
		}
		if p.S.Support < 2 || p.T.Support < 2 {
			t.Errorf("pair (%v, %v) below support", p.S.Items, p.T.Items)
		}
	}
	if res.Plan == "" {
		t.Error("optimized run has no plan description")
	}
}

func TestStrategiesAgreeOnPublicAPI(t *testing.T) {
	ds := marketDataset(t)
	build := func() *Query {
		return NewQuery(ds).
			MinSupport(2).
			WhereS(Domain(SubsetOf, "Type", "snacks")).
			WhereT(Domain(SubsetOf, "Type", "beer"), Aggregate(Min, "Price", GE, 8)).
			Where2(Join(Max, "Price", LE, Min, "Price"))
	}
	var want []string
	for i, st := range []Strategy{Optimized, OptimizedNoJmax, CAPOnly, AprioriPlus, FM} {
		res, err := build().Run(st)
		if err != nil {
			t.Fatalf("strategy %d: %v", st, err)
		}
		got := pairKeys(res)
		if i == 0 {
			want = got
			if len(want) == 0 {
				t.Fatal("query returned nothing; test needs a non-empty answer")
			}
			continue
		}
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Errorf("strategy %d disagrees: %v vs %v", st, got, want)
		}
	}
}

func TestSnackBeerSemantics(t *testing.T) {
	ds := marketDataset(t)
	res, err := NewQuery(ds).
		MinSupport(2).
		WhereS(Domain(EqualTo, "Type", "snacks")).
		WhereT(Domain(EqualTo, "Type", "beer")).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.ValidS {
		for _, it := range s.Items {
			if it > 2 {
				t.Errorf("S-set %v contains non-snack", s.Items)
			}
		}
	}
	for _, s := range res.ValidT {
		for _, it := range s.Items {
			if it < 3 {
				t.Errorf("T-set %v contains non-beer", s.Items)
			}
		}
	}
	// No 2-var constraint: cross product, no pair checks.
	if res.PairCount != int64(len(res.ValidS))*int64(len(res.ValidT)) {
		t.Errorf("PairCount = %d", res.PairCount)
	}
	if res.Stats.PairChecks != 0 {
		t.Errorf("PairChecks = %d", res.Stats.PairChecks)
	}
}

func TestMinSupportFraction(t *testing.T) {
	ds := marketDataset(t) // 10 transactions
	q := NewQuery(ds).MinSupportFraction(0.25)
	if q.minSupS != 3 || q.minSupT != 3 {
		t.Errorf("fraction threshold = %d/%d, want 3/3", q.minSupS, q.minSupT)
	}
	q = NewQuery(ds).MinSupportFraction(0)
	if q.minSupS != 1 {
		t.Errorf("zero fraction = %d, want 1", q.minSupS)
	}
	q = NewQuery(ds).MinSupportS(4).MinSupportT(2)
	if q.minSupS != 4 || q.minSupT != 2 {
		t.Error("per-side thresholds not applied")
	}
}

func TestDomainsAndMaxPairs(t *testing.T) {
	ds := marketDataset(t)
	res, err := NewQuery(ds).
		MinSupport(2).
		DomainS(0, 1).DomainT(3, 4).
		MaxPairs(2).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.ValidS {
		for _, it := range s.Items {
			if it != 0 && it != 1 {
				t.Errorf("S domain violated: %v", s.Items)
			}
		}
	}
	if len(res.Pairs) > 2 {
		t.Errorf("MaxPairs ignored: %d pairs", len(res.Pairs))
	}
	if res.PairCount < int64(len(res.Pairs)) {
		t.Errorf("PairCount %d < materialized %d", res.PairCount, len(res.Pairs))
	}
}

func TestErrorPaths(t *testing.T) {
	ds := marketDataset(t)
	if _, err := NewQuery(ds).WhereS(Aggregate(Sum, "Nope", LE, 1)).Run(Optimized); err == nil {
		t.Error("unknown numeric attribute accepted")
	}
	if _, err := NewQuery(ds).WhereS(Domain(SubsetOf, "Nope")).Run(Optimized); err == nil {
		t.Error("unknown categorical attribute accepted")
	}
	if _, err := NewQuery(ds).WhereS(Domain(SubsetOf, "Type", "wine")).Run(Optimized); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := NewQuery(ds).Where2(Join(Sum, "Nope", LE, Sum, "Price")).Run(Optimized); err == nil {
		t.Error("unknown 2-var attribute accepted")
	}
	if _, err := NewQuery(ds).DomainS(99).Run(Optimized); err == nil {
		t.Error("out-of-range domain item accepted")
	}
	if _, err := NewQuery(nil).Run(Optimized); err == nil {
		t.Error("nil dataset accepted")
	}
	if err := ds.AddTransaction(1, 99); err == nil {
		t.Error("out-of-range transaction item accepted")
	}
	if err := ds.SetNumeric("Short", []float64{1}); err == nil {
		t.Error("short attribute accepted")
	}
	if err := ds.SetCategorical("Short", []string{"a"}); err == nil {
		t.Error("short categorical accepted")
	}
}

func TestExplain(t *testing.T) {
	ds := marketDataset(t)
	desc, err := NewQuery(ds).
		MinSupport(2).
		Where2(
			Join(Max, "Price", LE, Min, "Price"),
			Join(Sum, "Price", LE, Sum, "Price"),
		).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "quasi-succinct") || !strings.Contains(desc, "non-quasi-succinct") {
		t.Errorf("Explain output incomplete:\n%s", desc)
	}
}

func TestTransactionsRoundTrip(t *testing.T) {
	ds := marketDataset(t)
	var sb strings.Builder
	if err := ds.WriteTransactions(&sb); err != nil {
		t.Fatal(err)
	}
	ds2 := NewDataset(6)
	if err := ds2.ReadTransactions(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if ds2.NumTransactions() != ds.NumTransactions() {
		t.Errorf("round trip: %d transactions, want %d", ds2.NumTransactions(), ds.NumTransactions())
	}
	// Out-of-domain transactions rejected.
	ds3 := NewDataset(2)
	if err := ds3.ReadTransactions(strings.NewReader("0 5\n")); err == nil {
		t.Error("out-of-domain text transactions accepted")
	}
}

func TestConstraintStrings(t *testing.T) {
	specs := []string{
		Aggregate(Sum, "Price", LE, 100).String(),
		Range("Price", 0, 400).String(),
		Domain(SubsetOf, "Type", "beer").String(),
		Cardinality(GE, 2).String(),
		DistinctCount("Type", EQ, 1).String(),
		Join(Max, "Price", LE, Min, "Price").String(),
		DomainJoin(EqualTo, "Type", "Type").String(),
	}
	for _, s := range specs {
		if s == "" {
			t.Error("empty constraint string")
		}
	}
}

func TestRunRules(t *testing.T) {
	ds := marketDataset(t)
	rules, err := NewQuery(ds).
		MinSupport(2).
		WhereS(Domain(SubsetOf, "Type", "snacks")).
		WhereT(Domain(SubsetOf, "Type", "beer")).
		RunRules(Optimized, RuleParams{MinConfidence: 0.5, SkipOverlapping: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
	prev := 2.0
	for _, r := range rules {
		if r.Confidence < 0.5 {
			t.Errorf("rule below confidence threshold: %+v", r)
		}
		if r.Confidence > prev {
			t.Error("rules not sorted by confidence")
		}
		prev = r.Confidence
		if r.SupportUnion > r.SupportS || r.SupportUnion > r.SupportT {
			t.Errorf("union support exceeds marginal: %+v", r)
		}
		for _, it := range r.S {
			if it > 2 {
				t.Errorf("rule S-side has non-snack: %+v", r)
			}
		}
	}
	// Error propagation from a bad query.
	if _, err := NewQuery(ds).WhereS(Aggregate(Sum, "Nope", LE, 1)).
		RunRules(Optimized, RuleParams{}); err == nil {
		t.Error("bad query accepted by RunRules")
	}
}

func TestVerboseTracing(t *testing.T) {
	ds := marketDataset(t)
	var buf strings.Builder
	_, err := NewQuery(ds).
		MinSupport(2).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Verbose(&buf).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reduction:", "S level 1", "T level 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Workers plumb-through smoke test: identical answer with parallelism.
	par, err := NewQuery(ds).MinSupport(2).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Workers(4).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	ser, _ := NewQuery(ds).MinSupport(2).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Run(Optimized)
	if par.PairCount != ser.PairCount {
		t.Errorf("parallel PairCount %d, serial %d", par.PairCount, ser.PairCount)
	}
}

func TestCardinalityAndDistinctCount(t *testing.T) {
	ds := marketDataset(t)
	res, err := NewQuery(ds).
		MinSupport(2).
		WhereS(Cardinality(LE, 1)).
		WhereT(DistinctCount("Type", EQ, 1)).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.ValidS {
		if len(s.Items) > 1 {
			t.Errorf("cardinality violated: %v", s.Items)
		}
	}
	types := []string{"snacks", "snacks", "snacks", "beer", "beer", "beer"}
	for _, s := range res.ValidT {
		seen := map[string]bool{}
		for _, it := range s.Items {
			seen[types[it]] = true
		}
		if len(seen) != 1 {
			t.Errorf("distinct count violated: %v", s.Items)
		}
	}
}
