package cfq

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mine"
	"repro/internal/obs"
	"repro/internal/obs/workload"
	"repro/internal/plan"
)

// defaultPlanner serves Prepare and every strategy-auto entry point that
// does not supply its own planner. Hosting processes with a feedback loop
// (the server) pass their own planner through PrepareWith instead.
var defaultPlanner = plan.New(plan.Options{})

// DefaultPlanner returns the process-wide planner Prepare uses when no
// planner is supplied. Folding workload feedback into it improves every
// subsequent auto-strategy query in the process.
func DefaultPlanner() *plan.Planner { return defaultPlanner }

// Prepared is a compiled, planned query — the Prepare half of the
// Parse → Prepare → Execute split. It captures the dataset snapshot and the
// planner's decision once; each Run replays the executable plan without
// re-classifying constraints or re-costing strategies, which is what makes
// prepared handles (and the server's plan cache) cheap to re-execute.
//
// A Prepared always answers over the snapshot captured at Prepare time: a
// dataset mutated afterwards does not change the answer. Holders that must
// never serve stale answers (the server's prepared-handle path) detect the
// generation change themselves and re-prepare.
type Prepared struct {
	q        *Query
	sess     *Session
	icfq     core.CFQ
	strat    Strategy
	decision *plan.Decision
}

// Prepare compiles and plans the query. It is
// PrepareContext(context.Background(), strat).
func (q *Query) Prepare(strat Strategy) (*Prepared, error) {
	return q.PrepareContext(context.Background(), strat)
}

// PrepareContext compiles and plans the query using the process-wide
// DefaultPlanner.
func (q *Query) PrepareContext(ctx context.Context, strat Strategy) (*Prepared, error) {
	return q.PrepareWith(ctx, nil, strat)
}

// PrepareWith compiles and plans the query with an explicit planner (nil
// uses DefaultPlanner). With strategy Auto the query is profiled (one
// database scan for item supports), the planner costs every strategy, and
// the decision — strategy, Jmax cutoff, miner — is baked into the prepared
// plan; when ctx carries a Tracer a "plan:decide" span records the choice.
// Any other strategy skips planning entirely and prepares that strategy
// as-is, so Prepare never costs more than the caller asked for.
func (q *Query) PrepareWith(ctx context.Context, pl *plan.Planner, strat Strategy) (p *Prepared, err error) {
	defer recoverToError(&err)
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}
	p = &Prepared{q: q, icfq: icfq, strat: strat}
	if strat != Auto {
		return p, nil
	}
	if pl == nil {
		pl = defaultPlanner
	}
	tracer := obs.FromContext(ctx)
	var sp *obs.Span
	if tracer != nil {
		sp = tracer.Start("plan:decide")
	}
	// Profile off one support scan: the report yields the workload class,
	// the feature vector feeds the cost model. A profiling failure is not
	// fatal — Decide degrades to the fallback strategy, never an error.
	var class string
	rep, feats, ferr := core.BuildExplainFeatures(icfq, Optimized.internal())
	if ferr != nil {
		feats = nil
	} else {
		class = workload.ClassKey(rep)
	}
	d := pl.Decide(feats, class)
	resolved, perr := ParseStrategy(d.Strategy)
	if perr != nil || resolved == Auto {
		resolved = Optimized
	}
	p.strat = resolved
	p.decision = d
	p.icfq.JmaxCutoff = d.JmaxCutoff
	if m, merr := mine.ParseMiner(d.Miner); merr == nil {
		p.icfq.Miner = m
	}
	if sp != nil {
		sp.SetAttrs(obs.String("strategy", d.Strategy), obs.String("source", d.Source))
		sp.End(nil)
	}
	return p, nil
}

// Prepare binds the query to the session's cached-lattice execution path.
// Session plans carry no planner decision: results are identical to any
// engine strategy, only the work differs (see Session).
func (s *Session) Prepare(q *Query) (*Prepared, error) {
	if q == nil || q.ds != s.ds {
		return nil, fmt.Errorf("cfq: session and query use different datasets")
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}
	return &Prepared{q: q, sess: s, icfq: icfq, strat: Optimized}, nil
}

// Strategy returns the concrete strategy the plan executes (never Auto).
func (p *Prepared) Strategy() Strategy { return p.strat }

// Decision returns the planner's decision, or nil when the strategy was
// fixed by the caller or the plan runs through a Session.
func (p *Prepared) Decision() *plan.Decision { return p.decision }

// Run executes the prepared plan. It is RunContext(context.Background()).
func (p *Prepared) Run() (*Result, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the prepared plan under ctx. Each call starts a
// fresh Budget pool; cancellation, budget, and tracing semantics match
// Query.RunContext. No classification or planning happens here — the plan
// was fixed at Prepare time.
func (p *Prepared) RunContext(ctx context.Context) (res *Result, err error) {
	defer recoverToError(&err)
	if p.sess != nil {
		return p.sess.RunContext(ctx, p.q)
	}
	icfq := p.icfq
	start := time.Now()
	icfq.Budget = p.q.budget.internal(start)
	ires, err := core.Run(ctx, icfq, p.strat.internal())
	if err != nil {
		publishRun(time.Since(start), nil, err)
		return nil, convertErr(err)
	}
	publishRun(time.Since(start), &ires.Stats, nil)
	res = convertResult(ires)
	res.Report = obs.FromContext(ctx).Report()
	return res, nil
}

// Explain renders the prepared plan's EXPLAIN report; plans chosen by the
// planner carry the decision (chosen strategy, costed alternatives) in the
// report's planner node.
func (p *Prepared) Explain() (rep *ExplainReport, err error) {
	defer recoverToError(&err)
	rep, err = core.BuildExplain(p.icfq, p.strat.internal())
	if err != nil {
		return nil, err
	}
	p.attachChoice(rep)
	return rep, nil
}

// ExplainAnalyzeContext executes the prepared plan and annotates the
// report with the run's attributed pruning, exactly as
// Query.ExplainAnalyzeContext does for a fixed strategy.
func (p *Prepared) ExplainAnalyzeContext(ctx context.Context) (res *Result, rep *ExplainReport, err error) {
	defer recoverToError(&err)
	if p.sess != nil {
		return nil, nil, fmt.Errorf("cfq: session-prepared queries do not support EXPLAIN ANALYZE")
	}
	rep, err = core.BuildExplain(p.icfq, p.strat.internal())
	if err != nil {
		return nil, nil, err
	}
	prune := obs.PruningFromContext(ctx)
	if prune == nil {
		prune = obs.NewPruneSet()
		ctx = obs.WithPruning(ctx, prune)
	}
	icfq := p.icfq
	start := time.Now()
	icfq.Budget = p.q.budget.internal(start)
	ires, err := core.Run(ctx, icfq, p.strat.internal())
	if err != nil {
		publishRun(time.Since(start), nil, err)
		return nil, nil, convertErr(err)
	}
	publishRun(time.Since(start), &ires.Stats, nil)
	core.AnalyzeExplain(rep, ires, prune)
	p.attachChoice(rep)
	res = convertResult(ires)
	res.Report = obs.FromContext(ctx).Report()
	return res, rep, nil
}

func (p *Prepared) attachChoice(rep *ExplainReport) {
	if p.decision != nil && rep.Planner == nil {
		rep.Planner = p.decision.Choice()
	}
}
