package cfq

import (
	"strings"
	"testing"
)

func TestSessionMatchesDirectRun(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)

	queries := []*Query{
		NewQuery(ds).MinSupport(2).
			Where2(Join(Max, "Price", LE, Min, "Price")),
		NewQuery(ds).MinSupport(2).
			WhereS(Domain(SubsetOf, "Type", "snacks")).
			WhereT(Aggregate(Min, "Price", GE, 8)).
			Where2(Join(Max, "Price", LE, Min, "Price")),
		NewQuery(ds).MinSupport(3). // refinement: higher threshold
						WhereS(Domain(SubsetOf, "Type", "snacks")),
		NewQuery(ds).MinSupport(2).
			WhereT(Cardinality(LE, 2)).
			Where2(DomainJoin(DisjointFrom, "Type", "Type")),
	}
	for i, q := range queries {
		fromSession, err := sess.Run(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		direct, err := q.Run(Optimized)
		if err != nil {
			t.Fatalf("query %d direct: %v", i, err)
		}
		if strings.Join(pairKeys(fromSession), ";") != strings.Join(pairKeys(direct), ";") {
			t.Errorf("query %d: session answer differs from direct run", i)
		}
		if fromSession.PairCount != direct.PairCount {
			t.Errorf("query %d: PairCount %d vs %d", i, fromSession.PairCount, direct.PairCount)
		}
	}
	// First query misses for the shared (nil-domain) lattice; all later
	// queries (same domain, equal-or-higher threshold) hit.
	cs := sess.CacheStats()
	if cs.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", cs.Misses)
	}
	if cs.Hits < 2*len(queries)-1 {
		t.Errorf("cache hits = %d, want >= %d", cs.Hits, 2*len(queries)-1)
	}
}

func TestSessionLowerThresholdRemines(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)
	if _, err := sess.Run(NewQuery(ds).MinSupport(4)); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := sess.CacheStats().Misses
	// A *lower* threshold cannot be served from the cache.
	if _, err := sess.Run(NewQuery(ds).MinSupport(2)); err != nil {
		t.Fatal(err)
	}
	if misses := sess.CacheStats().Misses; misses <= missesAfterFirst {
		t.Error("lower threshold served from a higher-threshold cache")
	}
	// …but now the low-threshold lattice serves both.
	hits := sess.CacheStats().Hits
	if _, err := sess.Run(NewQuery(ds).MinSupport(4)); err != nil {
		t.Fatal(err)
	}
	if h := sess.CacheStats().Hits; h <= hits {
		t.Error("refinement after re-mining did not hit the cache")
	}
}

func TestSessionInvalidation(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)
	res1, err := sess.Run(NewQuery(ds).MinSupport(2))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the dataset: the cache must be rebuilt and the answer change.
	for i := 0; i < 5; i++ {
		if err := ds.AddTransaction(0, 5); err != nil {
			t.Fatal(err)
		}
	}
	res2, err := sess.Run(NewQuery(ds).MinSupport(2))
	if err != nil {
		t.Fatal(err)
	}
	if res1.PairCount == res2.PairCount {
		t.Error("answer unchanged after dataset mutation (stale cache?)")
	}
	direct, _ := NewQuery(ds).MinSupport(2).Run(Optimized)
	if res2.PairCount != direct.PairCount {
		t.Errorf("post-mutation session answer %d, direct %d", res2.PairCount, direct.PairCount)
	}
}

func TestSessionDomainsCachedSeparately(t *testing.T) {
	ds := marketDataset(t)
	sess := NewSession(ds)
	if _, err := sess.Run(NewQuery(ds).MinSupport(2).DomainS(0, 1, 2).DomainT(3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if misses := sess.CacheStats().Misses; misses != 2 {
		t.Errorf("misses = %d, want 2 (one per domain)", misses)
	}
	if _, err := sess.Run(NewQuery(ds).MinSupport(3).DomainS(0, 1, 2).DomainT(3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if misses := sess.CacheStats().Misses; misses != 2 {
		t.Errorf("refinement re-mined: misses = %d", misses)
	}
}

func TestSessionWrongDataset(t *testing.T) {
	ds := marketDataset(t)
	other := marketDataset(t)
	sess := NewSession(ds)
	if _, err := sess.Run(NewQuery(other)); err == nil {
		t.Error("query against a different dataset accepted")
	}
	if _, err := sess.Run(nil); err == nil {
		t.Error("nil query accepted")
	}
}
