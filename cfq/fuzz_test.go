package cfq

import (
	"strings"
	"testing"
)

// Fuzz targets: parsers must never panic, and whatever they accept must
// compile and run against a real dataset. The seed corpus runs on every
// plain `go test`; use `go test -fuzz=FuzzParseConstraint ./cfq` to fuzz.

func fuzzDataset() *Dataset {
	ds := NewDataset(4)
	_ = ds.SetNumeric("Price", []float64{1, 2, 3, 4})
	_ = ds.SetCategorical("Type", []string{"a", "a", "b", "b"})
	for i := 0; i < 4; i++ {
		_ = ds.AddTransaction(0, 1, 2, 3)
	}
	return ds
}

func FuzzParseConstraint(f *testing.F) {
	for _, seed := range []string{
		"sum(Price) <= 10", "min(Price)>=8", "max(Price)<4", "avg(Price) > 1",
		"count() <= 2", "count(Type) = 1", "range(Price, 2, 4)",
		"Type subset {a}", "Type disjoint {b}", "Type equal {a, b}",
		"", "garbage", "min(", "))((", "Type subset", "range(Price,,)",
		"min(Price) <= \x00", "Type subset {a", "〹(Price) <= 1",
	} {
		f.Add(seed)
	}
	ds := fuzzDataset()
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseConstraint(s)
		if err != nil {
			return
		}
		// Anything accepted must either build cleanly or fail with a
		// proper error (unknown attribute), never panic.
		ic, err := c.build(ds)
		if err != nil {
			return
		}
		_ = ic.Satisfies(toSet([]int{0, 1}))
		_ = ic.String()
	})
}

func FuzzParseConstraint2(f *testing.F) {
	for _, seed := range []string{
		"max(S.Price) <= min(T.Price)", "sum(S.Price) >= sum(T.Price)",
		"S.Type = T.Type", "S.Type disjoint T.Type", "S.Type subset T.Type",
		"", "max(S.Price)", "S.Type ~ T.Type", "min(S.Price) <= 5",
		"avg(S.Price) = avg(T.Price)", "count(S.Price) <= count(T.Price)",
	} {
		f.Add(seed)
	}
	ds := fuzzDataset()
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseConstraint2(s)
		if err != nil {
			return
		}
		ic, err := c.build(ds)
		if err != nil {
			return
		}
		_ = ic.Satisfies(toSet([]int{0}), toSet([]int{2}))
		_ = ic.String()
	})
}

func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"{(S, T) | freq(S) >= 2 & max(S.Price) <= min(T.Price)}",
		"freq(S) & freq(T) & S.Type = T.Type",
		"{(S,T) | }", "{", "}", "& & &", "freq(S) >= 999999999999999999999",
		"min(S.Price) >= 1 & min(T.Price) >= 1",
	} {
		f.Add(seed)
	}
	ds := fuzzDataset()
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 512 {
			return // keep runs fast; long inputs add nothing structural
		}
		q, err := ParseQuery(ds, s)
		if err != nil {
			return
		}
		// Accepted queries must run without panicking. Cap the work.
		q.MaxPairs(4).MaxLevel(3)
		if _, err := q.Run(Optimized); err != nil {
			// Run may reject (e.g. unknown attribute) — as an error.
			if !strings.Contains(err.Error(), "cfq:") && !strings.Contains(err.Error(), "core:") {
				t.Errorf("unexpected error shape: %v", err)
			}
		}
	})
}
