package cfq

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mine"
)

// Budget caps the resources one query evaluation may consume. Every limit
// is optional (zero disables it); when any is exceeded the evaluation stops
// at the next mining checkpoint and returns a *BudgetError carrying the
// partial work counters. The budget spans the whole evaluation — both
// variable lattices and every optimizer phase draw from one pool.
type Budget struct {
	// MaxCandidates caps the number of candidate sets whose support is
	// counted.
	MaxCandidates int64
	// MaxFrequentSets caps the number of frequent sets discovered.
	MaxFrequentSets int64
	// MaxLatticeBytes caps the estimated memory allocated for lattice
	// state, cumulatively over the run.
	MaxLatticeBytes int64
	// Timeout, when positive, is a soft deadline measured from the start
	// of the evaluation. Unlike a context deadline it aborts only at
	// checkpoint boundaries and reports partial progress through the
	// returned *BudgetError — use a context deadline instead if you need
	// the plain context.DeadlineExceeded contract.
	Timeout time.Duration
	// Checkpoint, when non-nil, is invoked at every mining checkpoint with
	// a label describing where evaluation currently is; a non-nil return
	// aborts the run with that error. It is the progress-reporting and
	// fault-injection hook.
	Checkpoint func(where string) error
}

// internal converts the public budget into the engine's stateful form. Each
// evaluation gets a fresh *mine.Budget so consumption never leaks between
// runs; the soft deadline is anchored at now.
func (b *Budget) internal(now time.Time) *mine.Budget {
	if b == nil {
		return nil
	}
	mb := &mine.Budget{
		MaxCandidates:   b.MaxCandidates,
		MaxFrequentSets: b.MaxFrequentSets,
		MaxLatticeBytes: b.MaxLatticeBytes,
		Checkpoint:      b.Checkpoint,
	}
	if b.Timeout > 0 {
		mb.SoftDeadline = now.Add(b.Timeout)
	}
	return mb
}

// Budget-exhaustion resources reported in BudgetError.Resource.
const (
	ResourceCandidates   = mine.ResourceCandidates
	ResourceFrequentSets = mine.ResourceFrequentSets
	ResourceLatticeBytes = mine.ResourceLatticeBytes
	ResourceDeadline     = mine.ResourceDeadline
)

// BudgetError reports that an evaluation stopped because its Budget was
// exhausted. Stats snapshots the work done up to the abort, so partial
// progress is never lost.
type BudgetError struct {
	// Resource names the exhausted dimension (Resource* constants).
	Resource string
	// Where is the mining checkpoint at which the overrun was detected.
	Where string
	// Limit and Used are the configured cap and the observed consumption
	// (zero for deadline overruns).
	Limit, Used int64
	// Stats is the partial-progress snapshot.
	Stats Stats
}

// Error renders the overrun.
func (e *BudgetError) Error() string {
	if e.Resource == ResourceDeadline {
		return fmt.Sprintf("cfq: budget timeout exceeded at %s", e.Where)
	}
	return fmt.Sprintf("cfq: %s budget exhausted at %s: used %d of %d",
		e.Resource, e.Where, e.Used, e.Limit)
}

// convertErr translates engine errors into their public forms at the API
// seam. Context errors pass through unchanged (errors.Is sees
// context.Canceled / context.DeadlineExceeded through the engine's
// wrapping).
func convertErr(err error) error {
	if err == nil {
		return nil
	}
	var be *mine.BudgetError
	if errors.As(err, &be) {
		return &BudgetError{
			Resource: be.Resource,
			Where:    be.Where,
			Limit:    be.Limit,
			Used:     be.Used,
			Stats:    convertStats(be.Stats),
		}
	}
	return err
}

// recoverToError is the panic boundary of the public API: internal panics
// (e.g. malformed data reaching invariants-checked constructors) surface as
// errors instead of crashing the caller.
func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("cfq: internal error: %v", r)
	}
}
