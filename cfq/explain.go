package cfq

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// EXPLAIN / EXPLAIN ANALYZE for the optimizer. ExplainQuery renders the
// plan — each pushed constraint's classification, where it will be
// enforced, and an item-frequency estimate of its selectivity — without
// mining anything (it costs one database scan for the item supports).
// ExplainAnalyze runs the query and joins the attributed pruning counters
// onto the plan: per constraint, the candidates actually discarded at each
// of its pruning sites. The report's pruning buckets partition the run's
// total pruned candidates exactly (the attribution contract of the
// internal mining stack), so "explained" pruning always sums to the
// Stats.CandidatesPruned the run reports.

// ExplainReport is the machine-readable EXPLAIN / EXPLAIN ANALYZE output.
// Its Tree method renders the human-readable plan tree.
type ExplainReport = obs.ExplainReport

// ConstraintExplain annotates one constraint of an ExplainReport.
type ConstraintExplain = obs.ConstraintExplain

// BoundExplain annotates one Jmax dynamic bound of an ExplainReport.
type BoundExplain = obs.BoundExplain

// PruneSet accumulates pruning counters attributed per constraint-site.
// ExplainAnalyzeContext installs one automatically; install your own with
// WithPruning to observe several runs' attribution in aggregate.
type PruneSet = obs.PruneSet

// NewPruneSet creates an empty pruning-attribution accumulator.
func NewPruneSet() *PruneSet { return obs.NewPruneSet() }

// WithPruning returns a context carrying the PruneSet. Evaluations run
// under that context charge every discarded candidate to the pruning site
// (constraint × stage) responsible. A nil set returns ctx unchanged.
func WithPruning(ctx context.Context, p *PruneSet) context.Context {
	return obs.WithPruning(ctx, p)
}

// PruningFromContext returns the PruneSet carried by ctx, or nil.
func PruningFromContext(ctx context.Context) *PruneSet {
	return obs.PruningFromContext(ctx)
}

// ExplainQuery renders the optimizer's plan for the query under the given
// strategy without running it.
func (q *Query) ExplainQuery(strat Strategy) (rep *ExplainReport, err error) {
	defer recoverToError(&err)
	if strat == Auto {
		p, err := q.Prepare(Auto)
		if err != nil {
			return nil, err
		}
		return p.Explain()
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}
	return core.BuildExplain(icfq, strat.internal())
}

// QueryFeatures is the strategy-independent feature vector of a query —
// the workload journal's cost-model input (see obs.QueryFeatures).
type QueryFeatures = obs.QueryFeatures

// ProfileQuery renders the plan together with the query's feature vector
// (database shape, L1 stats, selectivity products, constraint mix) off the
// same single support scan ExplainQuery pays. It is the workload journal's
// profiling seam: one call per distinct canonical query per dataset
// generation yields everything the journal records besides run actuals.
func (q *Query) ProfileQuery(strat Strategy) (rep *ExplainReport, feats *QueryFeatures, err error) {
	defer recoverToError(&err)
	// The profile is strategy-independent (class and features come from the
	// constraint classification and the support scan), so auto profiles on
	// the default strategy's plan without invoking the planner.
	if strat == Auto {
		strat = Optimized
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, nil, err
	}
	return core.BuildExplainFeatures(icfq, strat.internal())
}

// ExplainAnalyze is ExplainAnalyzeContext(context.Background(), strat).
func (q *Query) ExplainAnalyze(strat Strategy) (*Result, *ExplainReport, error) {
	return q.ExplainAnalyzeContext(context.Background(), strat)
}

// ExplainAnalyzeContext evaluates the query like RunContext and returns,
// alongside the result, the plan report annotated with the run's actual
// per-constraint pruning. If ctx does not already carry a PruneSet, one is
// installed for the duration of the run. Cancellation, budgets, and
// tracing behave exactly as in RunContext.
func (q *Query) ExplainAnalyzeContext(ctx context.Context, strat Strategy) (res *Result, rep *ExplainReport, err error) {
	defer recoverToError(&err)
	if strat == Auto {
		p, err := q.PrepareContext(ctx, Auto)
		if err != nil {
			return nil, nil, err
		}
		return p.ExplainAnalyzeContext(ctx)
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, nil, err
	}
	rep, err = core.BuildExplain(icfq, strat.internal())
	if err != nil {
		return nil, nil, err
	}
	prune := obs.PruningFromContext(ctx)
	if prune == nil {
		prune = obs.NewPruneSet()
		ctx = obs.WithPruning(ctx, prune)
	}
	start := time.Now()
	icfq.Budget = q.budget.internal(start)
	ires, err := core.Run(ctx, icfq, strat.internal())
	if err != nil {
		publishRun(time.Since(start), nil, err)
		return nil, nil, convertErr(err)
	}
	publishRun(time.Since(start), &ires.Stats, nil)
	core.AnalyzeExplain(rep, ires, prune)
	res = convertResult(ires)
	res.Report = obs.FromContext(ctx).Report()
	return res, rep, nil
}

// AnalyzeCapture builds the plan report for an already-finished run from
// its attributed pruning counters: the plan is rendered fresh (one database
// scan for selectivity estimates) and annotated with the given PruneSet and
// pruned total. It is the slow-query capture path — the run went through
// the normal RunContext (possibly via a session cache), so no Result or
// plan internals survive, yet the report's sum contract still holds:
// SumPruned() == pruned, with sites that only a live plan could claim
// landing in OtherPruned.
func (q *Query) AnalyzeCapture(strat Strategy, prune *PruneSet, pruned int64) (rep *ExplainReport, err error) {
	defer recoverToError(&err)
	if strat == Auto {
		p, err := q.Prepare(Auto)
		if err != nil {
			return nil, err
		}
		if rep, err = p.Explain(); err != nil {
			return nil, err
		}
		core.AnalyzeCapture(rep, pruned, prune)
		return rep, nil
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}
	rep, err = core.BuildExplain(icfq, strat.internal())
	if err != nil {
		return nil, err
	}
	core.AnalyzeCapture(rep, pruned, prune)
	return rep, nil
}
