package cfq

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/attr"
	"repro/internal/itemset"
	"repro/internal/txdb"
)

// Dataset is a transaction database plus the itemInfo attribute relation:
// items are dense integer ids 0 … NumItems-1; each item may carry numeric
// attributes (Price-like) and categorical attributes (Type-like).
//
// Datasets are mutable until the first query runs against them; after that,
// adding transactions or attributes invalidates nothing but only affects
// later queries.
//
// A Dataset is safe for concurrent use: mutators and query compilation
// serialize on an internal lock, and each query evaluation captures an
// immutable compiled snapshot, so a mutation landing mid-evaluation never
// tears the transaction data a running query sees. A query that races a
// mutation sees either the old or the new compiled database, atomically.
type Dataset struct {
	mu          sync.Mutex
	numItems    int
	txs         []itemset.Set
	numeric     map[string][]float64
	categorical map[string][]string

	db    *txdb.DB
	attrs *attr.Table
	dirty bool
}

// NewDataset creates an empty dataset over an item domain of the given
// size.
func NewDataset(numItems int) *Dataset {
	return &Dataset{
		numItems:    numItems,
		numeric:     map[string][]float64{},
		categorical: map[string][]string{},
		dirty:       true,
	}
}

// NumItems returns the size of the item domain.
func (d *Dataset) NumItems() int { return d.numItems }

// NumTransactions returns the number of transactions added so far.
func (d *Dataset) NumTransactions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.txs)
}

// AddTransaction appends one transaction. Duplicate items are collapsed;
// out-of-domain items are an error.
func (d *Dataset) AddTransaction(items ...int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addTransactionLocked(items)
}

func (d *Dataset) addTransactionLocked(items []int) error {
	conv := make([]itemset.Item, len(items))
	for i, it := range items {
		if it < 0 || it >= d.numItems {
			return fmt.Errorf("cfq: item %d outside domain [0, %d)", it, d.numItems)
		}
		conv[i] = itemset.Item(it)
	}
	d.txs = append(d.txs, itemset.New(conv...))
	d.dirty = true
	return nil
}

// AddTransactions appends many transactions.
func (d *Dataset) AddTransactions(txs [][]int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range txs {
		if err := d.addTransactionLocked(t); err != nil {
			return err
		}
	}
	return nil
}

// SetNumeric registers a numeric item attribute; values must cover the
// whole item domain.
func (d *Dataset) SetNumeric(name string, values []float64) error {
	if len(values) != d.numItems {
		return fmt.Errorf("cfq: attribute %q has %d values, domain has %d items",
			name, len(values), d.numItems)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.numeric[name] = append([]float64(nil), values...)
	d.dirty = true
	return nil
}

// SetCategorical registers a categorical item attribute as one label per
// item.
func (d *Dataset) SetCategorical(name string, labels []string) error {
	if len(labels) != d.numItems {
		return fmt.Errorf("cfq: attribute %q has %d labels, domain has %d items",
			name, len(labels), d.numItems)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.categorical[name] = append([]string(nil), labels...)
	d.dirty = true
	return nil
}

// CheckTransactions validates a batch against the item domain without
// applying it. A durable registry logs the batch before the in-memory
// apply, and the validation must happen before the log write — an invalid
// batch must fail the request, not poison the log.
func (d *Dataset) CheckTransactions(txs [][]int) error {
	for i, t := range txs {
		for _, it := range t {
			if it < 0 || it >= d.numItems {
				return fmt.Errorf("cfq: transaction %d item %d outside domain [0, %d)", i, it, d.numItems)
			}
		}
	}
	return nil
}

// ExportState returns copies of the dataset's transactions and attribute
// maps — the payload a durable store persists in a create record or
// snapshot. The copies are safe to retain across later mutations.
func (d *Dataset) ExportState() (txs []itemset.Set, numeric map[string][]float64, categorical map[string][]string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	txs = append([]itemset.Set(nil), d.txs...)
	numeric = make(map[string][]float64, len(d.numeric))
	for name, vals := range d.numeric {
		numeric[name] = append([]float64(nil), vals...)
	}
	categorical = make(map[string][]string, len(d.categorical))
	for name, labels := range d.categorical {
		categorical[name] = append([]string(nil), labels...)
	}
	return txs, numeric, categorical
}

// Attributes returns the registered numeric and categorical attribute
// names, sorted (the dataset-info surface of a serving registry).
func (d *Dataset) Attributes() (numeric, categorical []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for name := range d.numeric {
		numeric = append(numeric, name)
	}
	for name := range d.categorical {
		categorical = append(categorical, name)
	}
	sort.Strings(numeric)
	sort.Strings(categorical)
	return numeric, categorical
}

// WrapDB adopts an existing internal transaction database (used by the
// experiment harness and the data generator CLI; not needed by API users).
func WrapDB(db *txdb.DB, numItems int) *Dataset {
	d := NewDataset(numItems)
	for i := 0; i < db.Len(); i++ {
		d.txs = append(d.txs, db.Transaction(i))
	}
	return d
}

// ReadTransactions loads transactions in the one-per-line text format
// (space-separated item ids). Malformed input — bad item tokens,
// out-of-domain ids, or lines violating the itemset invariants — is
// reported as an error, never a panic.
func (d *Dataset) ReadTransactions(r io.Reader) (err error) {
	defer recoverToError(&err)
	db, err := txdb.ReadText(r)
	if err != nil {
		return err
	}
	if db.NumItems() > d.numItems {
		return fmt.Errorf("cfq: transactions reference item %d outside domain [0, %d)",
			db.NumItems()-1, d.numItems)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < db.Len(); i++ {
		d.txs = append(d.txs, db.Transaction(i))
	}
	d.dirty = true
	return nil
}

// WriteTransactions saves the transactions in the text format.
func (d *Dataset) WriteTransactions(w io.Writer) error {
	d.mu.Lock()
	txs := append([]itemset.Set(nil), d.txs...)
	d.mu.Unlock()
	return txdb.New(txs).WriteText(w)
}

// Compile eagerly freezes the dataset into its internal compiled form (the
// first query otherwise pays this lazily). A long-lived server calls it
// after each batch of mutations so query requests never carry the
// compilation cost — and so the compiled snapshot flips atomically from the
// perspective of concurrent queries.
func (d *Dataset) Compile() error {
	_, _, err := d.snapshot()
	return err
}

// snapshot compiles (if needed) and returns the immutable compiled pair a
// query evaluation should capture once and use throughout. The returned
// *txdb.DB doubles as the dataset's generation token: it changes identity
// exactly when a mutation recompiles.
func (d *Dataset) snapshot() (*txdb.DB, *attr.Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.compileLocked(); err != nil {
		return nil, nil, err
	}
	return d.db, d.attrs, nil
}

// compileLocked freezes the dataset into the internal representations.
// Internal invariant violations (e.g. a malformed transaction injected past
// the validating mutators) surface as errors: compile is the panic boundary
// between caller-supplied data and the engine's panic-on-programmer-error
// constructors. Callers hold d.mu.
func (d *Dataset) compileLocked() (err error) {
	defer recoverToError(&err)
	if !d.dirty && d.db != nil {
		return nil
	}
	db := txdb.New(d.txs)
	attrs := attr.NewTable(d.numItems)
	for name, vals := range d.numeric {
		if err := attrs.SetNumeric(name, vals); err != nil {
			return err
		}
	}
	for name, labels := range d.categorical {
		ids, labelNames := internCategories(labels)
		if err := attrs.SetCategorical(name, ids, labelNames); err != nil {
			return err
		}
	}
	// Publish only after both halves built, so a failed compile leaves the
	// previous snapshot (if any) intact.
	d.db, d.attrs = db, attrs
	d.dirty = false
	return nil
}

// internCategories maps per-item label strings to dense category ids.
func internCategories(labels []string) ([]int32, []string) {
	uniq := map[string]int32{}
	var names []string
	for _, l := range labels {
		if _, ok := uniq[l]; !ok {
			uniq[l] = 0
			names = append(names, l)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		uniq[n] = int32(i)
	}
	ids := make([]int32, len(labels))
	for i, l := range labels {
		ids[i] = uniq[l]
	}
	return ids, names
}

func (d *Dataset) numericAttr(name string) (attr.Numeric, error) {
	_, attrs, err := d.snapshot()
	if err != nil {
		return nil, err
	}
	num, ok := attrs.Numeric(name)
	if !ok {
		return nil, fmt.Errorf("cfq: unknown numeric attribute %q", name)
	}
	return num, nil
}

// categoricalValues resolves a categorical attribute and, optionally, a
// list of labels into category ids (unknown labels are an error).
func (d *Dataset) categoricalValues(name string, labels []string) (*attr.Categorical, attr.ValueSet, error) {
	_, attrs, err := d.snapshot()
	if err != nil {
		return nil, nil, err
	}
	cat, ok := attrs.Categorical(name)
	if !ok {
		return nil, nil, fmt.Errorf("cfq: unknown categorical attribute %q", name)
	}
	vals := make([]int32, 0, len(labels))
	for _, l := range labels {
		id := cat.CategoryID(l)
		if id < 0 {
			return nil, nil, fmt.Errorf("cfq: attribute %q has no category %q", name, l)
		}
		vals = append(vals, id)
	}
	return cat, attr.NewValueSet(vals...), nil
}
