package cfq

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/attr"
	"repro/internal/itemset"
	"repro/internal/txdb"
)

// Dataset is a transaction database plus the itemInfo attribute relation:
// items are dense integer ids 0 … NumItems-1; each item may carry numeric
// attributes (Price-like) and categorical attributes (Type-like).
//
// Datasets are mutable until the first query runs against them; after that,
// adding transactions or attributes invalidates nothing but only affects
// later queries.
type Dataset struct {
	numItems    int
	txs         []itemset.Set
	numeric     map[string][]float64
	categorical map[string][]string

	db    *txdb.DB
	attrs *attr.Table
	dirty bool
}

// NewDataset creates an empty dataset over an item domain of the given
// size.
func NewDataset(numItems int) *Dataset {
	return &Dataset{
		numItems:    numItems,
		numeric:     map[string][]float64{},
		categorical: map[string][]string{},
		dirty:       true,
	}
}

// NumItems returns the size of the item domain.
func (d *Dataset) NumItems() int { return d.numItems }

// NumTransactions returns the number of transactions added so far.
func (d *Dataset) NumTransactions() int { return len(d.txs) }

// AddTransaction appends one transaction. Duplicate items are collapsed;
// out-of-domain items are an error.
func (d *Dataset) AddTransaction(items ...int) error {
	conv := make([]itemset.Item, len(items))
	for i, it := range items {
		if it < 0 || it >= d.numItems {
			return fmt.Errorf("cfq: item %d outside domain [0, %d)", it, d.numItems)
		}
		conv[i] = itemset.Item(it)
	}
	d.txs = append(d.txs, itemset.New(conv...))
	d.dirty = true
	return nil
}

// AddTransactions appends many transactions.
func (d *Dataset) AddTransactions(txs [][]int) error {
	for _, t := range txs {
		if err := d.AddTransaction(t...); err != nil {
			return err
		}
	}
	return nil
}

// SetNumeric registers a numeric item attribute; values must cover the
// whole item domain.
func (d *Dataset) SetNumeric(name string, values []float64) error {
	if len(values) != d.numItems {
		return fmt.Errorf("cfq: attribute %q has %d values, domain has %d items",
			name, len(values), d.numItems)
	}
	d.numeric[name] = append([]float64(nil), values...)
	d.dirty = true
	return nil
}

// SetCategorical registers a categorical item attribute as one label per
// item.
func (d *Dataset) SetCategorical(name string, labels []string) error {
	if len(labels) != d.numItems {
		return fmt.Errorf("cfq: attribute %q has %d labels, domain has %d items",
			name, len(labels), d.numItems)
	}
	d.categorical[name] = append([]string(nil), labels...)
	d.dirty = true
	return nil
}

// WrapDB adopts an existing internal transaction database (used by the
// experiment harness and the data generator CLI; not needed by API users).
func WrapDB(db *txdb.DB, numItems int) *Dataset {
	d := NewDataset(numItems)
	for i := 0; i < db.Len(); i++ {
		d.txs = append(d.txs, db.Transaction(i))
	}
	return d
}

// ReadTransactions loads transactions in the one-per-line text format
// (space-separated item ids). Malformed input — bad item tokens,
// out-of-domain ids, or lines violating the itemset invariants — is
// reported as an error, never a panic.
func (d *Dataset) ReadTransactions(r io.Reader) (err error) {
	defer recoverToError(&err)
	db, err := txdb.ReadText(r)
	if err != nil {
		return err
	}
	if db.NumItems() > d.numItems {
		return fmt.Errorf("cfq: transactions reference item %d outside domain [0, %d)",
			db.NumItems()-1, d.numItems)
	}
	for i := 0; i < db.Len(); i++ {
		d.txs = append(d.txs, db.Transaction(i))
	}
	d.dirty = true
	return nil
}

// WriteTransactions saves the transactions in the text format.
func (d *Dataset) WriteTransactions(w io.Writer) error {
	return txdb.New(d.txs).WriteText(w)
}

// compile freezes the dataset into the internal representations. Internal
// invariant violations (e.g. a malformed transaction injected past the
// validating mutators) surface as errors: compile is the panic boundary
// between caller-supplied data and the engine's panic-on-programmer-error
// constructors.
func (d *Dataset) compile() (err error) {
	defer recoverToError(&err)
	if !d.dirty && d.db != nil {
		return nil
	}
	d.db = txdb.New(d.txs)
	d.attrs = attr.NewTable(d.numItems)
	for name, vals := range d.numeric {
		if err := d.attrs.SetNumeric(name, vals); err != nil {
			return err
		}
	}
	for name, labels := range d.categorical {
		ids, labelNames := internCategories(labels)
		if err := d.attrs.SetCategorical(name, ids, labelNames); err != nil {
			return err
		}
	}
	d.dirty = false
	return nil
}

// internCategories maps per-item label strings to dense category ids.
func internCategories(labels []string) ([]int32, []string) {
	uniq := map[string]int32{}
	var names []string
	for _, l := range labels {
		if _, ok := uniq[l]; !ok {
			uniq[l] = 0
			names = append(names, l)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		uniq[n] = int32(i)
	}
	ids := make([]int32, len(labels))
	for i, l := range labels {
		ids[i] = uniq[l]
	}
	return ids, names
}

func (d *Dataset) numericAttr(name string) (attr.Numeric, error) {
	if err := d.compile(); err != nil {
		return nil, err
	}
	num, ok := d.attrs.Numeric(name)
	if !ok {
		return nil, fmt.Errorf("cfq: unknown numeric attribute %q", name)
	}
	return num, nil
}

// categoricalValues resolves a categorical attribute and, optionally, a
// list of labels into category ids (unknown labels are an error).
func (d *Dataset) categoricalValues(name string, labels []string) (*attr.Categorical, attr.ValueSet, error) {
	if err := d.compile(); err != nil {
		return nil, nil, err
	}
	cat, ok := d.attrs.Categorical(name)
	if !ok {
		return nil, nil, fmt.Errorf("cfq: unknown categorical attribute %q", name)
	}
	vals := make([]int32, 0, len(labels))
	for _, l := range labels {
		id := cat.CategoryID(l)
		if id < 0 {
			return nil, nil, fmt.Errorf("cfq: attribute %q has no category %q", name, l)
		}
		vals = append(vals, id)
	}
	return cat, attr.NewValueSet(vals...), nil
}
