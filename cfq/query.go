package cfq

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/mine"
	"repro/internal/obs"
	"repro/internal/rules"
)

// Query is a CFQ under construction. Build one with NewQuery, chain the
// configuration methods, then call Run. Queries are reusable and
// independent of each other; methods mutate and return the receiver.
type Query struct {
	ds           *Dataset
	minSupS      int
	minSupT      int
	domS, domT   []int
	consS, consT []Constraint
	cons2        []Constraint2
	maxPairs     int
	maxLevel     int
	workers      int
	budget       *Budget
	traceW       io.Writer
	// explicitSupS/T record whether a parsed query set its own freq()
	// thresholds (see ApplyDefaultSupports).
	explicitSupS, explicitSupT bool
}

// NewQuery starts a query against the dataset with a default minimum
// support of 1 transaction.
func NewQuery(ds *Dataset) *Query {
	return &Query{ds: ds, minSupS: 1, minSupT: 1}
}

// MinSupport sets the absolute support threshold for both variables.
func (q *Query) MinSupport(n int) *Query {
	q.minSupS, q.minSupT = n, n
	return q
}

// MinSupportFraction sets the support threshold for both variables as a
// fraction of the number of transactions (rounded up, at least 1).
func (q *Query) MinSupportFraction(f float64) *Query {
	n := int(f*float64(q.ds.NumTransactions()) + 0.999999)
	if n < 1 {
		n = 1
	}
	return q.MinSupport(n)
}

// MinSupportS sets the S-variable threshold only.
func (q *Query) MinSupportS(n int) *Query { q.minSupS = n; return q }

// MinSupportT sets the T-variable threshold only.
func (q *Query) MinSupportT(n int) *Query { q.minSupT = n; return q }

// ApplyDefaultSupports copies def's thresholds for each side whose
// threshold this query did not set via an explicit freq() conjunct. It is
// meant for callers combining ParseQuery output with configured defaults.
func (q *Query) ApplyDefaultSupports(def *Query) *Query {
	if !q.explicitSupS {
		q.minSupS = def.minSupS
	}
	if !q.explicitSupT {
		q.minSupT = def.minSupT
	}
	return q
}

// DomainS restricts S to the given items.
func (q *Query) DomainS(items ...int) *Query { q.domS = items; return q }

// DomainT restricts T to the given items.
func (q *Query) DomainT(items ...int) *Query { q.domT = items; return q }

// WhereS adds 1-var constraints on S.
func (q *Query) WhereS(cs ...Constraint) *Query {
	q.consS = append(q.consS, cs...)
	return q
}

// WhereT adds 1-var constraints on T.
func (q *Query) WhereT(cs ...Constraint) *Query {
	q.consT = append(q.consT, cs...)
	return q
}

// Where2 adds 2-var constraints binding S and T.
func (q *Query) Where2(cs ...Constraint2) *Query {
	q.cons2 = append(q.cons2, cs...)
	return q
}

// MaxPairs caps the number of materialized answer pairs (the count of all
// valid pairs is still reported).
func (q *Query) MaxPairs(n int) *Query { q.maxPairs = n; return q }

// MaxLevel stops each lattice after the given level (0 = unlimited).
func (q *Query) MaxLevel(n int) *Query { q.maxLevel = n; return q }

// Workers sets the support-counting parallelism (values below 2 keep
// counting serial; results are identical either way).
func (q *Query) Workers(n int) *Query { q.workers = n; return q }

// Budget caps the resources each evaluation of this query may consume; an
// exceeded limit aborts the run with a *BudgetError carrying the partial
// stats. Each Run/RunContext call starts a fresh consumption pool.
func (q *Query) Budget(b Budget) *Query { q.budget = &b; return q }

// Verbose streams one progress line per completed mining level (and per
// optimizer phase) to w while the query runs.
func (q *Query) Verbose(w io.Writer) *Query { q.traceW = w; return q }

// FrequentSet is a frequent itemset with its support.
type FrequentSet struct {
	Items   []int
	Support int
}

// Pair is one CFQ answer: a valid (S, T) pair of frequent sets.
type Pair struct {
	S, T FrequentSet
}

// Stats reports the work a strategy performed — the cost components of the
// paper's ccc-optimality analysis plus scan accounting.
type Stats struct {
	// CandidatesCounted is the number of sets whose support was counted.
	CandidatesCounted int64
	// ItemConstraintChecks / SetConstraintChecks split constraint-checking
	// invocations by operand size; ccc-optimal strategies use only the
	// former during set computation.
	ItemConstraintChecks int64
	SetConstraintChecks  int64
	// PairChecks counts 2-var evaluations during final pair formation.
	PairChecks int64
	// CandidatesPruned counts candidates generated or materialized and then
	// discarded — by a constraint, a frequency test, or pair rejection.
	// ExplainAnalyze attributes this total per constraint-site.
	CandidatesPruned int64
	// FrequentSets / ValidSets count discovered sets.
	FrequentSets int64
	ValidSets    int64
	// DBScans counts full passes over the transaction data.
	DBScans int64
	// LatticeBytes estimates the memory allocated for lattice state,
	// cumulatively over the run (what Budget.MaxLatticeBytes bounds).
	LatticeBytes int64
	// Checkpoints counts the cancellation/budget checkpoints passed — the
	// granularity at which the evaluation could have been interrupted.
	Checkpoints int64
}

// Result is a CFQ answer.
type Result struct {
	// Pairs is the answer (possibly truncated to MaxPairs); PairCount is
	// the true total.
	Pairs     []Pair
	PairCount int64
	// ValidS/ValidT are the frequent valid sets per side.
	ValidS, ValidT []FrequentSet
	// LevelsS/LevelsT are the same, grouped by cardinality.
	LevelsS, LevelsT [][]FrequentSet
	// Stats reports the strategy's work counters.
	Stats Stats
	// Plan describes the optimizer's decisions (empty for baselines).
	Plan string
	// Report is the per-phase trace of the evaluation, present when the
	// run's context carried a Tracer (see WithTracer). For engine-driven
	// runs its Totals equal Stats; session runs may report more (the
	// report covers cache-building work that session Stats, which
	// describe only the query's own cost, exclude).
	Report *RunReport `json:",omitempty"`
}

// Canonical renders the query in a normalized textual form: effective
// frequency thresholds, domains, and the sorted constraint lists. Two
// queries with the same canonical form compute the same answer over the
// same dataset snapshot, which is what makes it usable as a result-cache
// key (whitespace and conjunct order in the source text do not matter —
// the form is derived from the parsed structure, not the input string).
// Budget, Workers and Verbose do not affect the answer and are excluded.
func (q *Query) Canonical() string {
	parts := []string{
		fmt.Sprintf("freq(S) >= %d", q.minSupS),
		fmt.Sprintf("freq(T) >= %d", q.minSupT),
	}
	dom := func(label string, items []int) {
		if items == nil {
			return
		}
		sorted := append([]int(nil), items...)
		sort.Ints(sorted)
		parts = append(parts, fmt.Sprintf("%s in %v", label, sorted))
	}
	dom("S", q.domS)
	dom("T", q.domT)
	group := func(prefix string, n int, str func(int) string) {
		g := make([]string, n)
		for i := range g {
			g[i] = prefix + str(i)
		}
		sort.Strings(g)
		parts = append(parts, g...)
	}
	group("S: ", len(q.consS), func(i int) string { return q.consS[i].str })
	group("T: ", len(q.consT), func(i int) string { return q.consT[i].str })
	group("2: ", len(q.cons2), func(i int) string { return q.cons2[i].str })
	if q.maxPairs > 0 {
		parts = append(parts, fmt.Sprintf("maxpairs=%d", q.maxPairs))
	}
	if q.maxLevel > 0 {
		parts = append(parts, fmt.Sprintf("maxlevel=%d", q.maxLevel))
	}
	return strings.Join(parts, " & ")
}

// compile translates the public query into the internal CFQ. The dataset's
// compiled snapshot is captured once here, so the whole evaluation sees one
// consistent transaction database even if the dataset is mutated while the
// query runs.
func (q *Query) compile() (core.CFQ, error) {
	var zero core.CFQ
	if q.ds == nil {
		return zero, fmt.Errorf("cfq: query has no dataset")
	}
	db, _, err := q.ds.snapshot()
	if err != nil {
		return zero, err
	}
	icfq := core.CFQ{
		DB:          db,
		MinSupportS: q.minSupS,
		MinSupportT: q.minSupT,
		MaxPairs:    q.maxPairs,
		MaxLevel:    q.maxLevel,
		Workers:     q.workers,
	}
	if q.traceW != nil {
		w := q.traceW
		icfq.Trace = func(msg string) { fmt.Fprintln(w, msg) }
	}
	conv := func(items []int) (itemset.Set, error) {
		if items == nil {
			return nil, nil
		}
		out := make([]itemset.Item, len(items))
		for i, it := range items {
			if it < 0 || it >= q.ds.numItems {
				return nil, fmt.Errorf("cfq: domain item %d outside [0, %d)", it, q.ds.numItems)
			}
			out[i] = itemset.Item(it)
		}
		return itemset.New(out...), nil
	}
	if icfq.DomainS, err = conv(q.domS); err != nil {
		return zero, err
	}
	if icfq.DomainT, err = conv(q.domT); err != nil {
		return zero, err
	}
	for _, c := range q.consS {
		ic, err := c.build(q.ds)
		if err != nil {
			return zero, err
		}
		icfq.ConstraintsS = append(icfq.ConstraintsS, ic)
	}
	for _, c := range q.consT {
		ic, err := c.build(q.ds)
		if err != nil {
			return zero, err
		}
		icfq.ConstraintsT = append(icfq.ConstraintsT, ic)
	}
	for _, c := range q.cons2 {
		ic, err := c.build(q.ds)
		if err != nil {
			return zero, err
		}
		icfq.Constraints2 = append(icfq.Constraints2, ic)
	}
	return icfq, nil
}

// Run evaluates the query with the given strategy. It is
// RunContext(context.Background(), strat).
func (q *Query) Run(strat Strategy) (*Result, error) {
	return q.RunContext(context.Background(), strat)
}

// RunContext evaluates the query with the given strategy under ctx. A
// cancelled or expired context aborts mining at the next checkpoint and
// returns an error wrapping ctx.Err(); an exhausted Budget returns a
// *BudgetError with the partial stats. Internal panics (malformed data
// reaching engine invariants) are converted to errors at this boundary.
func (q *Query) RunContext(ctx context.Context, strat Strategy) (res *Result, err error) {
	defer recoverToError(&err)
	if strat == Auto {
		p, err := q.PrepareContext(ctx, Auto)
		if err != nil {
			return nil, err
		}
		return p.RunContext(ctx)
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	icfq.Budget = q.budget.internal(start)
	ires, err := core.Run(ctx, icfq, strat.internal())
	if err != nil {
		publishRun(time.Since(start), nil, err)
		return nil, convertErr(err)
	}
	publishRun(time.Since(start), &ires.Stats, nil)
	res = convertResult(ires)
	res.Report = obs.FromContext(ctx).Report()
	return res, nil
}

// Explain returns a description of the optimizer's plan for the query.
func (q *Query) Explain() (string, error) {
	icfq, err := q.compile()
	if err != nil {
		return "", err
	}
	plan, err := core.Explain(icfq)
	if err != nil {
		return "", err
	}
	return plan.Describe(), nil
}

// Rule is an association rule S ⇒ T derived from a valid CFQ pair — the
// second phase of the paper's architecture.
type Rule struct {
	S, T                             []int
	SupportS, SupportT, SupportUnion int
	// Confidence is sup(S ∪ T)/sup(S); Lift normalizes it by T's base rate.
	Confidence, Lift float64
}

// RuleParams filters generated rules.
type RuleParams struct {
	// MinConfidence keeps rules with confidence >= this value.
	MinConfidence float64
	// MinLift keeps rules with lift >= this value (0 disables).
	MinLift float64
	// MinJointSupport requires sup(S ∪ T) to reach this count (0 disables).
	MinJointSupport int
	// SkipOverlapping drops pairs whose sides share items.
	SkipOverlapping bool
}

// RunRules evaluates the query and derives rules S ⇒ T from the valid
// pairs, sorted by descending confidence. Rules are formed from the
// materialized pairs, so raise MaxPairs (or leave it 0 = unlimited) to
// cover the whole answer. It is RunRulesContext(context.Background(), ...).
func (q *Query) RunRules(strat Strategy, p RuleParams) ([]Rule, error) {
	return q.RunRulesContext(context.Background(), strat, p)
}

// RunRulesContext is RunRules under a context and the query's Budget, with
// the same cancellation and budget semantics as RunContext.
func (q *Query) RunRulesContext(ctx context.Context, strat Strategy, p RuleParams) (out []Rule, err error) {
	defer recoverToError(&err)
	if strat == Auto {
		prep, err := q.PrepareContext(ctx, Auto)
		if err != nil {
			return nil, err
		}
		strat = prep.Strategy()
	}
	icfq, err := q.compile()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	icfq.Budget = q.budget.internal(start)
	ires, err := core.Run(ctx, icfq, strat.internal())
	if err != nil {
		publishRun(time.Since(start), nil, err)
		return nil, convertErr(err)
	}
	publishRun(time.Since(start), &ires.Stats, nil)
	irules, err := rules.FromPairs(icfq.DB, ires.Pairs, rules.Params{
		MinConfidence:   p.MinConfidence,
		MinLift:         p.MinLift,
		MinJointSupport: p.MinJointSupport,
		SkipOverlapping: p.SkipOverlapping,
	})
	if err != nil {
		return nil, err
	}
	out = make([]Rule, len(irules))
	for i, r := range irules {
		out[i] = Rule{
			S:            itemsOf(r.S),
			T:            itemsOf(r.T),
			SupportS:     r.SupportS,
			SupportT:     r.SupportT,
			SupportUnion: r.SupportUnion,
			Confidence:   r.Confidence,
			Lift:         r.Lift,
		}
	}
	return out, nil
}

func itemsOf(s itemset.Set) []int {
	out := make([]int, s.Len())
	for i, it := range s {
		out[i] = int(it)
	}
	return out
}

func convertSet(c mine.Counted) FrequentSet {
	items := make([]int, c.Set.Len())
	for i, it := range c.Set {
		items[i] = int(it)
	}
	return FrequentSet{Items: items, Support: c.Support}
}

func convertLevels(levels [][]mine.Counted) (flat []FrequentSet, byLevel [][]FrequentSet) {
	for _, lv := range levels {
		var conv []FrequentSet
		for _, c := range lv {
			fs := convertSet(c)
			conv = append(conv, fs)
			flat = append(flat, fs)
		}
		byLevel = append(byLevel, conv)
	}
	return flat, byLevel
}

func convertStats(s mine.Stats) Stats {
	return Stats{
		CandidatesCounted:    s.CandidatesCounted,
		ItemConstraintChecks: s.ItemConstraintChecks,
		SetConstraintChecks:  s.SetConstraintChecks,
		PairChecks:           s.PairChecks,
		CandidatesPruned:     s.CandidatesPruned,
		FrequentSets:         s.FrequentSets,
		ValidSets:            s.ValidSets,
		DBScans:              s.DBScans,
		LatticeBytes:         s.LatticeBytes,
		Checkpoints:          s.Checkpoints,
	}
}

func convertResult(ires *core.Result) *Result {
	res := &Result{PairCount: ires.PairCount}
	res.ValidS, res.LevelsS = convertLevels(ires.LevelsS)
	res.ValidT, res.LevelsT = convertLevels(ires.LevelsT)
	for _, p := range ires.Pairs {
		res.Pairs = append(res.Pairs, Pair{S: convertSet(p.S), T: convertSet(p.T)})
	}
	res.Stats = convertStats(ires.Stats)
	if ires.Plan != nil {
		res.Plan = ires.Plan.Describe()
	}
	return res
}
