package cfq

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/mine"
	"repro/internal/obs"
)

// reportStats rebuilds a public Stats from a report's counter totals.
func reportStats(rep *RunReport) Stats {
	return convertStats(mine.FromCounters(rep.Totals))
}

// TestRunReportTotalsMatchStats: for every engine strategy, a traced 2-var
// query attaches a RunReport whose per-phase deltas sum exactly to the
// run's Stats.
func TestRunReportTotalsMatchStats(t *testing.T) {
	ds := marketDataset(t)
	for _, st := range []Strategy{Optimized, OptimizedNoJmax, CAPOnly, AprioriPlus, FM, Sequential} {
		t.Run(fmt.Sprint(st), func(t *testing.T) {
			tracer := NewTracer(TracerOptions{Name: "test"})
			ctx := WithTracer(context.Background(), tracer)
			res, err := NewQuery(ds).MinSupport(2).
				Where2(Join(Max, "Price", LE, Min, "Price")).
				RunContext(ctx, st)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report == nil {
				t.Fatal("traced run has no Report")
			}
			if got := reportStats(res.Report); got != res.Stats {
				t.Errorf("report totals %+v\nresult stats  %+v", got, res.Stats)
			}
		})
	}
}

// TestRunReportSpanTree: the optimized strategy's report names every Jmax
// iteration and mining level, the way the ISSUE's Figure-7-style run
// requires.
func TestRunReportSpanTree(t *testing.T) {
	tracer := NewTracer(TracerOptions{Name: "fig7"})
	ctx := WithTracer(context.Background(), tracer)
	res, err := NewQuery(marketDataset(t)).MinSupport(2).
		WhereS(Range("Price", 2, 10)).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		RunContext(ctx, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"phase1", "reduce", "jmax-iter-1", "finalize", "pairs", "S:level-1", "T:level-1"} {
		if res.Report.Find(name) == nil {
			var have []string
			res.Report.Walk(func(s *SpanReport) { have = append(have, s.Name) })
			t.Fatalf("span %q missing; have %v", name, have)
		}
	}
	// Untraced runs carry no report and agree on the answer.
	plain, err := NewQuery(marketDataset(t)).MinSupport(2).
		WhereS(Range("Price", 2, 10)).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report != nil {
		t.Error("untraced run has a Report")
	}
	if plain.PairCount != res.PairCount || plain.Stats != res.Stats {
		t.Errorf("tracing changed the run: %+v vs %+v", plain.Stats, res.Stats)
	}
}

// TestSessionReport: session runs name the cache interactions; the second
// run's report shows cache hits and no mining spans.
func TestSessionReport(t *testing.T) {
	ds := marketDataset(t)
	s := NewSession(ds)
	q := NewQuery(ds).MinSupport(2).Where2(Join(Max, "Price", LE, Min, "Price"))

	tracer := NewTracer(TracerOptions{Name: "cold"})
	res, err := s.RunContext(WithTracer(context.Background(), tracer), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"S:cache-miss", "S:filter", "T:filter", "pairs"} {
		if res.Report.Find(name) == nil {
			t.Errorf("cold-run span %q missing", name)
		}
	}

	tracer = NewTracer(TracerOptions{Name: "warm"})
	res, err = s.RunContext(WithTracer(context.Background(), tracer), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Find("S:cache-hit") == nil || res.Report.Find("T:cache-hit") == nil {
		t.Error("warm-run report missing cache-hit spans")
	}
	if res.Report.Find("S:cache-miss") != nil {
		t.Error("warm run re-mined")
	}
	// Warm-run work is pure filtering: its report totals equal its stats.
	if got := reportStats(res.Report); got != res.Stats {
		t.Errorf("warm report totals %+v, stats %+v", got, res.Stats)
	}
}

// TestReportJSONOmitsEmpty: Result marshals without a Report field when
// untraced (the CLI's -json output shape must not change by default).
func TestReportJSONOmitsEmpty(t *testing.T) {
	res, err := NewQuery(marketDataset(t)).MinSupport(2).
		Where2(Join(Max, "Price", LE, Min, "Price")).
		Run(Optimized)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"Report"`) {
		t.Error("untraced Result JSON contains Report")
	}
}

// TestMidRunMetricsScrape: a metrics scrape races mining without torn
// reads — run under -race, this locks in the atomic txdb scan counter and
// the lock-free registry (the satellite's concurrency property).
func TestMidRunMetricsScrape(t *testing.T) {
	ds := marketDataset(t)
	s := NewSession(ds)
	handler := obs.MetricsHandler()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			var snap map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
				t.Errorf("scrape returned invalid JSON: %v", err)
				return
			}
			rec = httptest.NewRecorder()
			obs.NewMetricsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
			_, _ = io.Copy(io.Discard, rec.Body)
		}
	}()

	hitsBefore := s.CacheStats().Hits
	scansBefore := obs.MDBScans.Value()
	for i := 0; i < 8; i++ {
		q := NewQuery(ds).MinSupport(2).Where2(Join(Max, "Price", LE, Min, "Price"))
		if _, err := s.RunContext(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Run(Optimized); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if hits := s.CacheStats().Hits; hits <= hitsBefore {
		t.Error("session cache never hit")
	}
	if obs.MDBScans.Value() <= scansBefore {
		t.Error("db_scans_total did not move")
	}
	if obs.MQueries.Value() == 0 {
		t.Error("queries_total is zero")
	}
}
